"""Streaming metrics: sketches, the streaming collector, and time shards.

Three layers of coverage (DESIGN.md §13):

* sketch unit tests -- each accumulator against its exact numpy
  counterpart, including the ``merge`` paths the time-sharded runner
  depends on;
* collector differential tests -- the same simulation run in
  ``mode="exact"`` and ``mode="streaming"`` must agree: exactly where
  streaming keeps full information (counts, means, lag sigma, Gini
  while the reservoir is unfilled, dispatch tail), within the sketch
  error budget (<1%) for latency percentiles;
* composition tests -- windowed partials merged back together, and the
  :func:`repro.parallel.run_time_sharded` fan-out against an unsharded
  run.
"""

import dataclasses
import pickle

import numpy as np
import pytest

from repro.core import make_scheduler
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_single
from repro.metrics import MetricsCollector
from repro.metrics.streaming import (
    BoundedServiceSeries,
    MetricsPartial,
    P2Quantile,
    QuantileDigest,
    ReservoirSample,
    RingBuffer,
    StreamingMoments,
    merge_partials,
)
from repro.parallel import run_time_sharded, slice_trace
from repro.simulator import BackloggedSource, Simulation, ThreadPoolServer
from repro.simulator.rng import make_rng
from repro.workloads import (
    LogNormalCost,
    PoissonArrivals,
    TenantSpec,
    generate_trace,
)


class TestStreamingMoments:
    def test_matches_numpy(self):
        rng = make_rng(1, "moments")
        values = rng.normal(3.0, 2.0, size=1000)
        moments = StreamingMoments()
        for v in values:
            moments.add(float(v))
        assert moments.count == 1000
        assert moments.mean == pytest.approx(np.mean(values))
        assert moments.std == pytest.approx(np.std(values))
        assert moments.minimum == pytest.approx(values.min())
        assert moments.maximum == pytest.approx(values.max())

    def test_merge_is_exact(self):
        rng = make_rng(2, "moments")
        values = rng.normal(0.0, 1.0, size=501)
        left, right = StreamingMoments(), StreamingMoments()
        for v in values[:200]:
            left.add(float(v))
        for v in values[200:]:
            right.add(float(v))
        merged = left.merge(right)
        assert merged.count == 501
        assert merged.mean == pytest.approx(np.mean(values))
        assert merged.std == pytest.approx(np.std(values))

    def test_merge_with_empty(self):
        moments = StreamingMoments()
        moments.add(5.0)
        assert moments.merge(StreamingMoments()).mean == 5.0
        assert StreamingMoments().merge(moments).std == 0.0

    def test_add_zeros_matches_explicit_zeros(self):
        backfilled = StreamingMoments()
        backfilled.add_zeros(10)
        backfilled.add(4.0)
        explicit = StreamingMoments()
        for _ in range(10):
            explicit.add(0.0)
        explicit.add(4.0)
        assert backfilled.count == explicit.count
        assert backfilled.mean == pytest.approx(explicit.mean)
        assert backfilled.std == pytest.approx(explicit.std)

    def test_empty(self):
        moments = StreamingMoments()
        assert moments.count == 0
        assert moments.variance == 0.0


class TestQuantileDigest:
    def _fill(self, digest, values):
        for v in values:
            digest.add(float(v))

    def test_percentiles_within_one_percent(self):
        rng = make_rng(3, "digest")
        values = rng.lognormal(mean=-2.0, sigma=1.2, size=20000)
        digest = QuantileDigest(compression=200)
        self._fill(digest, values)
        for q in (0.01, 0.50, 0.99):
            exact = float(np.percentile(values, q * 100.0))
            assert digest.quantile(q) == pytest.approx(exact, rel=0.01)

    def test_bounded_size(self):
        # Centroid count is O(compression) with a log(n) tail factor
        # (tail centroids stay near-singletons); 50k points must land
        # far below linear growth.
        rng = make_rng(4, "digest")
        digest = QuantileDigest(compression=100)
        self._fill(digest, rng.random(50000))
        digest._compress()
        assert digest.size <= 8 * 100

    def test_extremes_are_exact(self):
        digest = QuantileDigest()
        values = [5.0, 1.0, 9.0, 3.0]
        self._fill(digest, values)
        assert digest.quantile(0.0) == pytest.approx(1.0)
        assert digest.quantile(1.0) == pytest.approx(9.0)

    def test_merge_matches_union(self):
        rng = make_rng(5, "digest")
        left_values = rng.normal(0.0, 1.0, size=8000)
        right_values = rng.normal(4.0, 0.5, size=4000)
        left, right = QuantileDigest(), QuantileDigest()
        self._fill(left, left_values)
        self._fill(right, right_values)
        merged = left.merge(right)
        union = np.concatenate([left_values, right_values])
        assert merged.count == pytest.approx(12000)
        for q in (0.01, 0.50, 0.99):
            exact = float(np.percentile(union, q * 100.0))
            assert merged.quantile(q) == pytest.approx(exact, rel=0.02, abs=0.02)

    def test_empty_and_validation(self):
        digest = QuantileDigest()
        assert digest.empty
        assert np.isnan(digest.quantile(0.5))
        with pytest.raises(ConfigurationError):
            digest.quantile(1.5)
        with pytest.raises(ConfigurationError):
            digest.add(1.0, weight=0.0)
        with pytest.raises(ConfigurationError):
            QuantileDigest(compression=2)


class TestP2Quantile:
    def test_tracks_median(self):
        rng = make_rng(6, "p2")
        values = rng.normal(10.0, 3.0, size=20000)
        sketch = P2Quantile(0.5)
        for v in values:
            sketch.add(float(v))
        assert sketch.value() == pytest.approx(
            float(np.percentile(values, 50)), rel=0.05
        )

    def test_tiny_stream_uses_exact_buffer(self):
        sketch = P2Quantile(0.5)
        for v in (3.0, 1.0, 2.0):
            sketch.add(v)
        assert sketch.value() == pytest.approx(2.0)

    def test_merge_approximates_union(self):
        rng = make_rng(7, "p2")
        left_values = rng.random(5000)
        right_values = rng.random(5000) + 0.5
        left, right = P2Quantile(0.9), P2Quantile(0.9)
        for v in left_values:
            left.add(float(v))
        for v in right_values:
            right.add(float(v))
        merged = left.merge(right)
        union = np.concatenate([left_values, right_values])
        assert merged.count == 10000
        assert merged.value() == pytest.approx(
            float(np.percentile(union, 90)), rel=0.1
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            P2Quantile(0.0)
        with pytest.raises(ConfigurationError):
            P2Quantile(0.5).merge(P2Quantile(0.9))
        assert np.isnan(P2Quantile(0.5).value())


class TestReservoirSample:
    def test_exact_below_capacity(self):
        reservoir = ReservoirSample(10, seed=0)
        for i in range(8):
            reservoir.add(float(i), float(i) * 2.0)
        assert reservoir.exact
        assert reservoir.items() == [(float(i), float(i) * 2.0) for i in range(8)]

    def test_bounded_and_seeded(self):
        def build():
            reservoir = ReservoirSample(16, seed=42, )
            for i in range(1000):
                reservoir.add(float(i), float(i))
            return reservoir

        a, b = build(), build()
        assert not a.exact
        assert a.size == 16
        assert a.items() == b.items()  # same seed, same subsample

    def test_merge_exact_when_fits(self):
        left = ReservoirSample(10, seed=0)
        right = ReservoirSample(10, seed=0, )
        left.add(0.0, 1.0)
        right.add(1.0, 2.0)
        merged = left.merge(right)
        assert merged.items() == [(0.0, 1.0), (1.0, 2.0)]
        assert merged.seen == 2

    def test_merge_bounded_and_proportional(self):
        left = ReservoirSample(16, seed=1)
        right = ReservoirSample(16, seed=2)
        for i in range(900):
            left.add(float(i), -1.0)
        for i in range(100):
            right.add(1000.0 + i, +1.0)
        merged = left.merge(right)
        assert merged.size == 16
        assert merged.seen == 1000
        # ~90% of the stream came from the left window.
        values = [v for _, v in merged.items()]
        assert values.count(-1.0) >= 10

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReservoirSample(0, seed=0)


class TestRingBuffer:
    def test_keeps_most_recent(self):
        ring = RingBuffer(3)
        for i in range(7):
            ring.append(i)
        assert ring.items() == [4, 5, 6]
        assert ring.total == 7
        assert ring.dropped == 4

    def test_below_capacity(self):
        ring = RingBuffer(8)
        ring.append("a")
        assert ring.items() == ["a"]
        assert ring.dropped == 0

    def test_merge_keeps_tail(self):
        left, right = RingBuffer(4), RingBuffer(4)
        for i in range(4):
            left.append(i)
        for i in range(4, 10):
            right.append(i)
        merged = left.merge(right)
        assert merged.items() == [6, 7, 8, 9]
        assert merged.total == 10

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RingBuffer(0)


class TestBoundedServiceSeries:
    def test_below_capacity_is_exact(self):
        series = BoundedServiceSeries(capacity=64)
        for i in range(10):
            series.observe(i * 0.1, {"A": float(i)}, {"A": float(i) * 0.9})
        times, actual, gps = series.columns("A")
        assert times == pytest.approx(np.arange(10) * 0.1)
        assert actual == pytest.approx(np.arange(10, dtype=float))
        assert gps == pytest.approx(np.arange(10) * 0.9)

    def test_decimation_bounds_memory_and_keeps_shape(self):
        series = BoundedServiceSeries(capacity=32)
        for i in range(1000):
            series.observe(i * 0.1, {"A": float(i)}, {})
        assert series.size < 32
        times, actual, _ = series.columns("A")
        # The cumulative curve y = 10 x survives decimation exactly at
        # the retained instants.
        assert actual == pytest.approx(times * 10.0)
        assert series.stride > 1

    def test_late_tenant_backfilled(self):
        series = BoundedServiceSeries()
        series.observe(0.1, {"A": 1.0}, {})
        series.observe(0.2, {"A": 2.0, "B": 5.0}, {})
        _, actual_b, _ = series.columns("B")
        assert actual_b == pytest.approx([0.0, 5.0])

    def test_merge_rebases_cumulative_curves(self):
        left = BoundedServiceSeries(capacity=64)
        right = BoundedServiceSeries(capacity=64)
        for i in range(5):
            left.observe(i * 0.1, {"A": float(i)}, {"A": float(i)})
        # The later window restarts its cumulative counters at zero
        # (its shard's server started idle); merge re-bases on the
        # earlier window's finals.
        for i in range(5):
            right.observe(0.5 + i * 0.1, {"A": float(i) * 2.0}, {"A": float(i)})
        merged = left.merge(right)
        times, actual, gps = merged.columns("A")
        assert times == pytest.approx(np.arange(10) * 0.1)
        assert actual == pytest.approx(
            [0, 1, 2, 3, 4, 4, 6, 8, 10, 12], abs=1e-12
        )
        assert gps == pytest.approx([0, 1, 2, 3, 4, 4, 5, 6, 7, 8], abs=1e-12)

    def test_merge_handles_disjoint_tenants(self):
        left = BoundedServiceSeries()
        right = BoundedServiceSeries()
        left.observe(0.0, {"A": 1.0}, {})
        right.observe(0.1, {"B": 2.0}, {})
        merged = left.merge(right)
        _, actual_a, _ = merged.columns("A")
        _, actual_b, _ = merged.columns("B")
        assert actual_a == pytest.approx([1.0, 1.0])  # trailing pad
        assert actual_b == pytest.approx([0.0, 2.0])  # backfill

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BoundedServiceSeries(capacity=4)


def _run_collector(mode, duration=2.0, warmup=0.0, **sketch_kwargs):
    """One deterministic backlogged run, collected in the given mode."""
    sim = Simulation()
    scheduler = make_scheduler("2dfq", num_threads=2, thread_rate=10.0)
    server = ThreadPoolServer(
        sim, scheduler, num_threads=2, rate=10.0, refresh_interval=None
    )
    collector = MetricsCollector(
        server, sample_interval=0.1, warmup=warmup, mode=mode, **sketch_kwargs
    )
    costs = iter([1.0, 5.0, 0.5, 2.0] * 10000)
    BackloggedSource(server, "A", lambda: ("x", 1.0), window=2).start()
    BackloggedSource(server, "B", lambda: ("y", next(costs)), window=2).start()
    sim.run(until=duration)
    return collector


class TestStreamingCollectorDifferential:
    def test_latency_stats_within_budget(self):
        exact = _run_collector("exact").result()
        streaming = _run_collector("streaming").result()
        for tenant in exact.tenants():
            es, ss = exact.latency_stats(tenant), streaming.latency_stats(tenant)
            assert ss.count == es.count
            assert ss.mean == pytest.approx(es.mean)
            assert ss.maximum == es.maximum
            assert ss.p50 == pytest.approx(es.p50, rel=0.01)
            assert ss.p99 == pytest.approx(es.p99, rel=0.01)

    def test_lag_sigma_matches(self):
        exact = _run_collector("exact").result()
        streaming = _run_collector("streaming").result()
        for tenant in exact.tenants():
            assert streaming.lag_sigma(tenant, reference_rate=10.0) == (
                pytest.approx(exact.lag_sigma(tenant, reference_rate=10.0))
            )
        assert streaming.lag_sigmas(reference_rate=10.0).keys() == (
            exact.lag_sigmas(reference_rate=10.0).keys()
        )

    def test_gini_exact_while_reservoir_unfilled(self):
        exact = _run_collector("exact").result()
        streaming = _run_collector("streaming").result()
        assert streaming.gini_times == pytest.approx(exact.gini_times)
        assert streaming.gini_values == pytest.approx(exact.gini_values)
        assert streaming.gini_mean == pytest.approx(
            float(np.mean(exact.gini_values))
        )

    def test_dispatch_ring_is_tail_of_exact_log(self):
        exact = _run_collector("exact").result()
        streaming = _run_collector("streaming", dispatch_capacity=16).result()
        assert streaming.dispatch_log == exact.dispatch_log[-16:]
        assert streaming.partial.dispatches.total == len(exact.dispatch_log)

    def test_service_series_matches_below_capacity(self):
        exact = _run_collector("exact").result()
        streaming = _run_collector("streaming").result()
        for tenant in exact.tenants():
            es = exact.service_series(tenant)
            ss = streaming.service_series(tenant)
            assert ss.times == pytest.approx(es.times)
            assert ss.actual == pytest.approx(es.actual)
            assert ss.gps == pytest.approx(es.gps)
            assert ss.service_rate() == pytest.approx(es.service_rate())

    def test_warmup_baseline_matches_exact(self):
        exact = _run_collector("exact", warmup=1.0).result()
        streaming = _run_collector("streaming", warmup=1.0).result()
        for tenant in exact.tenants():
            assert streaming.service_series(tenant).service_rate() == (
                pytest.approx(exact.service_series(tenant).service_rate())
            )

    def test_partial_requires_streaming_mode(self):
        with pytest.raises(ConfigurationError, match="streaming"):
            _run_collector("exact").partial()

    def test_invalid_mode_rejected(self):
        sim = Simulation()
        scheduler = make_scheduler("wfq", num_threads=1)
        server = ThreadPoolServer(
            sim, scheduler, num_threads=1, refresh_interval=None
        )
        with pytest.raises(ConfigurationError):
            MetricsCollector(server, mode="approximate")

    def test_sketch_sizes_reported(self):
        streaming = _run_collector("streaming").result()
        sizes = streaming.sketch_sizes()
        assert sizes["tenants"] == 2
        assert sizes["series_points"] > 0
        assert sizes["dispatch_ring"] > 0

    def test_sketch_gauges_exported_to_tracer(self):
        from repro.obs.tracer import Tracer

        sim = Simulation()
        scheduler = make_scheduler("wfq", num_threads=1, thread_rate=10.0)
        server = ThreadPoolServer(
            sim, scheduler, num_threads=1, rate=10.0, refresh_interval=None
        )
        collector = MetricsCollector(server, sample_interval=0.1, mode="streaming")
        tracer = Tracer("streaming-gauges")
        collector.attach_tracer(tracer)
        BackloggedSource(server, "A", lambda: ("x", 1.0), window=1).start()
        sim.run(until=1.0)
        snapshot = tracer.registry.snapshot()
        sizes = collector.partial().sketch_sizes()
        for name, value in sizes.items():
            assert snapshot[f"collector.sketch.{name}"] == value
        assert snapshot["collector.samples"] > 0

    def test_partial_pickles(self):
        partial = _run_collector("streaming").partial()
        clone = pickle.loads(pickle.dumps(partial))
        assert clone.sketch_sizes() == partial.sketch_sizes()
        assert clone.lag_samples == partial.lag_samples


class TestMetricsPartialMerge:
    def _synthetic(self, offset, samples=40, seed=0):
        partial = MetricsPartial(sample_interval=0.1, seed=seed)
        rng = make_rng(seed, "synthetic", str(offset))
        for i in range(samples):
            now = offset + (i + 1) * 0.1
            actual = {"A": (i + 1) * 1.0, "B": (i + 1) * 0.5}
            gps = {"A": (i + 1) * 0.9, "B": (i + 1) * 0.6}
            partial.observe_sample(now, actual, gps)
            partial.observe_gini(now, float(rng.random()))
            partial.observe_latency("A", float(rng.lognormal(-2.0, 1.0)))
        return partial

    def test_merge_equals_concatenated_stream(self):
        first = self._synthetic(0.0)
        second = self._synthetic(4.0)
        merged = first.merge(second)
        assert merged.lag_samples == 80
        assert merged.latency_moments["A"].count == 80
        moments = merged.lag_moments["A"]
        assert moments.count == 80
        # Both windows' lag streams are (i+1)*0.1 for A: exact merge.
        expected = np.concatenate([np.arange(1, 41) * 0.1] * 2)
        assert moments.mean == pytest.approx(np.mean(expected))
        assert moments.std == pytest.approx(np.std(expected))

    def test_merge_partials_folds_in_order(self):
        partials = [self._synthetic(float(i) * 4.0) for i in range(3)]
        merged = merge_partials(partials)
        assert merged.lag_samples == 120
        assert merge_partials([partials[0]]) is partials[0]
        with pytest.raises(ConfigurationError):
            merge_partials([])

    def test_merge_backfills_disjoint_tenants(self):
        first = MetricsPartial(sample_interval=0.1)
        second = MetricsPartial(sample_interval=0.1)
        first.observe_sample(0.1, {"A": 2.0}, {"A": 2.0})
        second.observe_sample(0.2, {"B": 3.0}, {"B": 3.0})
        merged = first.merge(second)
        # A tenant absent from one window contributes zero lag there,
        # matching the exact tracker's zero-backfill.
        assert merged.lag_moments["A"].count == 2
        assert merged.lag_moments["B"].count == 2
        assert merged.lag_moments["B"].mean == pytest.approx(0.0)

    def test_shift_times_moves_all_clocks(self):
        from repro.metrics.collector import DispatchRecord

        partial = self._synthetic(0.0, samples=3)
        partial.observe_dispatch(
            DispatchRecord(0, "A", "x", 1.0, start=0.05, end=0.15)
        )
        partial.shift_times(10.0)
        assert partial.series.times[0] == pytest.approx(10.1)
        assert partial.gini.items()[0][0] == pytest.approx(10.1)
        record = partial.dispatches.items()[0]
        assert record.start == pytest.approx(10.05)
        assert record.end == pytest.approx(10.15)


def _stable_specs(n=4):
    return [
        TenantSpec(
            f"T{i}",
            api_costs={"get": LogNormalCost(median=0.01, sigma_decades=0.2)},
            arrivals=PoissonArrivals(rate=50.0),
        )
        for i in range(n)
    ]


def _stable_config(**overrides):
    base = dict(
        name="shardtest",
        schedulers=("2dfq",),
        num_threads=4,
        thread_rate=1.0,
        duration=4.0,
        seed=11,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestTimeSharding:
    def test_sharded_matches_unsharded_streaming(self):
        specs = _stable_specs()
        config = _stable_config()
        whole = run_single(
            "2dfq", specs, dataclasses.replace(config, metrics_mode="streaming")
        )
        sharded = run_time_sharded("2dfq", specs, config, num_shards=2)
        for tenant in ("T0", "T1"):
            ws, ss = whole.latency_stats(tenant), sharded.latency_stats(tenant)
            # Boundary truncation may drop the handful of requests in
            # flight when a shard's window closes.
            assert ss.count >= ws.count - 10
            assert ss.p50 == pytest.approx(ws.p50, rel=0.1)
            assert ss.p99 == pytest.approx(ws.p99, rel=0.25)
            assert sharded.lag_sigma(tenant, reference_rate=1.0) == (
                pytest.approx(whole.lag_sigma(tenant, reference_rate=1.0), rel=0.2)
            )
        assert sharded.gini_mean == pytest.approx(whole.gini_mean, abs=0.05)
        assert sharded.partial.lag_samples == whole.partial.lag_samples

    def test_single_shard_is_plain_streaming_run(self):
        specs = _stable_specs(2)
        config = _stable_config(duration=2.0)
        whole = run_single(
            "2dfq", specs, dataclasses.replace(config, metrics_mode="streaming")
        )
        sharded = run_time_sharded("2dfq", specs, config, num_shards=1)
        stats_w, stats_s = whole.latency_stats("T0"), sharded.latency_stats("T0")
        assert stats_s.count == stats_w.count
        assert stats_s.p50 == pytest.approx(stats_w.p50)

    def test_rejects_closed_loop_specs(self):
        from repro.workloads import Backlogged

        specs = _stable_specs(2)
        specs.append(
            TenantSpec(
                "C",
                api_costs={"get": LogNormalCost(median=0.01, sigma_decades=0.2)},
                arrivals=Backlogged(window=2),
            )
        )
        with pytest.raises(ConfigurationError, match="closed-loop"):
            run_time_sharded("2dfq", specs, _stable_config(), num_shards=2)

    def test_rejects_warmup_spanning_shards(self):
        config = _stable_config(duration=4.0, warmup=3.0)
        with pytest.raises(ConfigurationError, match="warmup"):
            run_time_sharded("2dfq", _stable_specs(), config, num_shards=2)

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            run_time_sharded("2dfq", _stable_specs(), _stable_config(), 0)

    def test_slice_trace_rebases_times(self):
        trace = generate_trace(_stable_specs(2), 2.0, seed=3)
        cut = slice_trace(trace, 1.0, 2.0)
        assert all(0.0 <= r.time < 1.0 for r in cut)
        kept = [r for r in trace if 1.0 <= r.time < 2.0]
        assert len(cut) == len(kept)
        with pytest.raises(ConfigurationError):
            slice_trace(trace, 2.0, 1.0)

    def test_shard_cells_pickle(self):
        from repro.parallel import TimeShardSpec

        trace = generate_trace(_stable_specs(2), 1.0, seed=3)
        cell = TimeShardSpec(
            scheduler="2dfq",
            config=_stable_config(duration=1.0),
            trace=tuple(trace),
            shard_index=0,
            num_shards=2,
        )
        clone = pickle.loads(pickle.dumps(cell))
        assert clone.label() == cell.label()
        assert clone.start_time == 0.0


class TestConfigPlumbing:
    def test_metrics_mode_validated(self):
        with pytest.raises(ConfigurationError, match="metrics_mode"):
            _stable_config(metrics_mode="bogus")

    def test_streaming_mode_flows_through_run_single(self):
        from repro.metrics.collector import StreamingRunMetrics

        config = _stable_config(duration=1.0, metrics_mode="streaming")
        metrics = run_single("2dfq", _stable_specs(2), config)
        assert isinstance(metrics, StreamingRunMetrics)

    def test_figures_cli_flag_sets_mode(self):
        import argparse

        from repro.figures import _flagged

        config = _stable_config(duration=1.0)
        args = argparse.Namespace(
            fault_plan_obj=None, validate=False, metrics="streaming"
        )
        assert _flagged(config, args).metrics_mode == "streaming"
        args_default = argparse.Namespace(
            fault_plan_obj=None, validate=False, metrics="exact"
        )
        assert _flagged(config, args_default) is config
