"""Tests for the python -m repro.figures CLI (fast figures only)."""

import pytest

from repro.figures import FIGURES, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for fig in FIGURES:
            assert fig in out

    def test_unknown_figure(self, capsys):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_fig01_output(self, capsys):
        assert main(["fig01"]) == 0
        out = capsys.readouterr().out
        assert "wfq" in out and "2dfq" in out
        assert "W0 |" in out

    def test_fig05_and_fig06(self, capsys):
        assert main(["fig05", "fig06"]) == 0
        out = capsys.readouterr().out
        assert out.count("=====") >= 2
        assert "a1 c1 d1" in out  # the 2DFQ partitioned schedule

    def test_trace_flag_exports_run_telemetry(self, capsys, tmp_path):
        import json

        trace_dir = tmp_path / "traces"
        assert main(["fig06", "--trace", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "trace artifacts" in out
        runs = [p for p in trace_dir.iterdir() if p.is_dir()]
        assert len(runs) == 1
        run_dir = runs[0]
        assert "2dfq" in run_dir.name
        events = [
            json.loads(line)
            for line in (run_dir / "events.jsonl").read_text().splitlines()
        ]
        assert any(e["kind"] == "select" for e in events)
        chrome = json.loads((run_dir / "chrome_trace.json").read_text())
        assert chrome["traceEvents"]
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["counters"]["scheduler.dispatches"] > 0
        assert manifest["scheduler"]["name"] == "2dfq"

    def test_without_trace_flag_nothing_is_written(self, capsys, tmp_path):
        from repro.obs import current_session

        assert main(["fig06"]) == 0
        assert current_session() is None

    def test_audit_flag_exports_audit_artifacts(self, capsys, tmp_path):
        import json

        audit_dir = tmp_path / "audit"
        assert main(["fig08", "--duration", "1", "--audit", str(audit_dir)]) == 0
        assert "trace artifacts" in capsys.readouterr().out
        runs = [p for p in audit_dir.iterdir() if p.is_dir()]
        assert runs
        for run_dir in runs:
            report = json.loads((run_dir / "audit_report.json").read_text())
            assert {"lag", "bursty", "estimator_drift"} <= set(report["monitors"])
            assert report["samples"] > 0
            for line in (run_dir / "metrics.prom").read_text().splitlines():
                if not line.startswith("#"):
                    _, value = line.split()
                    float(value)
            manifest = json.loads((run_dir / "manifest.json").read_text())
            assert "audit" in manifest


class TestParallelFlags:
    def test_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(["fig01", "--jobs", "0"])

    def test_trace_with_jobs_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fig06", "--trace", str(tmp_path), "--jobs", "2"])

    def test_audit_with_jobs_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fig06", "--audit", str(tmp_path), "--jobs", "2"])

    def test_audit_with_trace_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["fig06", "--trace", str(tmp_path / "t"),
                 "--audit", str(tmp_path / "a")]
            )

    def test_trace_with_serial_jobs_allowed(self, capsys, tmp_path):
        assert main(["fig06", "--trace", str(tmp_path), "--jobs", "1"]) == 0
        assert "trace artifacts" in capsys.readouterr().out

    def test_cache_cold_then_warm_identical_output(self, capsys, tmp_path):
        def strip_cache_stats(text):
            return [
                line for line in text.splitlines()
                if not line.startswith("run cache:")
            ]

        cache_dir = tmp_path / "runcache"
        args = ["fig08", "--duration", "1", "--cache", str(cache_dir)]
        assert main(args) == 0
        cold = capsys.readouterr().out
        # The cold run both stores runs and may already re-hit them (the
        # fig08 sweep revisits the n=50 cell its headline comparison
        # computed), so pin only that something was stored.
        assert "15 stored" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "0 miss(es)" in warm
        assert strip_cache_stats(warm) == strip_cache_stats(cold)

    def test_jobs_output_matches_serial(self, capsys):
        assert main(["fig08", "--duration", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["fig08", "--duration", "1", "--jobs", "2"]) == 0
        fanned = capsys.readouterr().out
        assert fanned == serial
