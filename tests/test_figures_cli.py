"""Tests for the python -m repro.figures CLI (fast figures only)."""

import pytest

from repro.figures import FIGURES, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for fig in FIGURES:
            assert fig in out

    def test_unknown_figure(self, capsys):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_fig01_output(self, capsys):
        assert main(["fig01"]) == 0
        out = capsys.readouterr().out
        assert "wfq" in out and "2dfq" in out
        assert "W0 |" in out

    def test_fig05_and_fig06(self, capsys):
        assert main(["fig05", "fig06"]) == 0
        out = capsys.readouterr().out
        assert out.count("=====") >= 2
        assert "a1 c1 d1" in out  # the 2DFQ partitioned schedule
