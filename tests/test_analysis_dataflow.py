"""Dataflow-analysis tests: the dimension lattice, the RPR1xx rules
pinned against seeded fixture packages, and the clean-tree gate.

The lattice tests exercise ``repro.analysis.dataflow.lattice`` directly;
the rule tests run the full analyzer over one fixture package per rule
(``tests/analysis_fixtures/{dimarith,dimcmp,dimcall,rngtaint,wallsim}``)
and pin the exact ``(code, filename, line)`` triples, so a transfer
function that drifts -- firing on the wrong node, or going silent --
fails loudly.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from repro.analysis import Analyzer
from repro.analysis.dataflow.lattice import (
    CONFLICT,
    DIMENSIONLESS,
    UNKNOWN,
    AbstractValue,
    additive_transfer,
    binop_transfer,
    compatible,
    comparison_hazard,
    join,
    join_values,
    multiplicative_transfer,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "analysis_fixtures")
SRC_REPRO = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src", "repro"
)

DATAFLOW_CODES = {"RPR101", "RPR102", "RPR103", "RPR110", "RPR111"}


def findings_in(
    subdir: str, code: Optional[str] = None
) -> List[Tuple[str, str, int]]:
    """Sorted (code, filename, line) triples from one fixture package."""
    result = Analyzer().run([os.path.join(FIXTURES, subdir)])
    return sorted(
        (f.code, os.path.basename(f.path), f.line)
        for f in result.findings
        if code is None or f.code == code
    )


# -- the lattice ---------------------------------------------------------------


def test_join_identities_and_absorption() -> None:
    assert join(UNKNOWN, "cost") == "cost"
    assert join("cost", UNKNOWN) == "cost"
    assert join("cost", "cost") == "cost"
    assert join(CONFLICT, "cost") == CONFLICT
    assert join("sim_time", CONFLICT) == CONFLICT
    # A control-flow merge of two different concrete dimensions is loss
    # of information, not evidence of a bug: Unknown, never Conflict.
    assert join("sim_time", "virtual_time") == UNKNOWN
    assert join(DIMENSIONLESS, "weight") == UNKNOWN


def test_join_values_unions_taint() -> None:
    a = AbstractValue("cost", rng=True)
    b = AbstractValue("cost", wall=True)
    merged = join_values(a, b)
    assert merged.dim == "cost"
    assert merged.rng and merged.wall
    assert merged.tainted


def test_additive_compatibility_groups() -> None:
    assert compatible("sim_time", "duration")
    assert compatible("wall_time", "duration")
    assert compatible("virtual_time", "virtual_time")
    # duration bridges both wall axes without making them compatible
    # with *each other* -- the property RPR101/RPR102 rest on.
    assert not compatible("sim_time", "wall_time")
    assert not compatible("sim_time", "virtual_time")
    assert not compatible("cost", "duration")
    assert not compatible("weight", "rate")
    # Unknown/dimensionless/conflict never block an operation.
    assert compatible(UNKNOWN, "cost")
    assert compatible(DIMENSIONLESS, "sim_time")
    assert compatible(CONFLICT, "weight")


def test_additive_transfer_point_and_length_algebra() -> None:
    # point - point measures a length; point +/- length stays a point.
    assert additive_transfer("-", "sim_time", "sim_time") == "duration"
    assert additive_transfer("-", "wall_time", "wall_time") == "duration"
    assert additive_transfer("+", "sim_time", "duration") == "sim_time"
    assert additive_transfer("+", "duration", "sim_time") == "sim_time"
    assert additive_transfer("-", "sim_time", "duration") == "sim_time"
    # the virtual axis is closed under addition (tags + spans).
    assert additive_transfer("+", "virtual_time", "virtual_time") == (
        "virtual_time"
    )
    assert additive_transfer("+", "cost", "cost") == "cost"
    # dimensionless is the additive identity (epsilons, literals).
    assert additive_transfer("+", "cost", DIMENSIONLESS) == "cost"
    assert additive_transfer("-", DIMENSIONLESS, "weight") == "weight"
    # incompatible pairs conflict regardless of operator.
    assert additive_transfer("+", "cost", "virtual_time") == CONFLICT


def test_multiplicative_transfer_composition_tables() -> None:
    # Figure 7's conversions, both operand orders.
    assert multiplicative_transfer("*", "rate", "duration") == "cost"
    assert multiplicative_transfer("*", "duration", "rate") == "cost"
    assert multiplicative_transfer("*", "weight", "virtual_time") == "cost"
    assert multiplicative_transfer("*", "virtual_time", "weight") == "cost"
    assert multiplicative_transfer("/", "cost", "rate") == "duration"
    assert multiplicative_transfer("/", "cost", "duration") == "rate"
    assert multiplicative_transfer("/", "cost", "weight") == "virtual_time"
    assert multiplicative_transfer("/", "cost", "virtual_time") == "weight"
    # same-dimension quotient is a pure ratio.
    assert multiplicative_transfer("/", "cost", "cost") == DIMENSIONLESS
    # dimensionless is the multiplicative identity.
    assert multiplicative_transfer("*", DIMENSIONLESS, "weight") == "weight"
    assert multiplicative_transfer("/", "sim_time", DIMENSIONLESS) == (
        "sim_time"
    )
    # exotic compositions are Unknown, never Conflict: multiplication
    # is how new dimensions are built.
    assert multiplicative_transfer("*", "cost", "cost") == UNKNOWN
    assert multiplicative_transfer("/", DIMENSIONLESS, "rate") == UNKNOWN


def test_binop_transfer_hazard_flag_and_floor_division() -> None:
    dim, hazard = binop_transfer("+", "cost", "virtual_time")
    assert dim == CONFLICT and hazard
    dim, hazard = binop_transfer("+", "sim_time", "duration")
    assert dim == "sim_time" and not hazard
    # multiplication never produces the RPR101 hazard flag.
    dim, hazard = binop_transfer("*", "cost", "virtual_time")
    assert dim == UNKNOWN and not hazard
    # floor division follows true division's composition.
    dim, hazard = binop_transfer("//", "cost", "rate")
    assert dim == "duration" and not hazard


def test_comparison_hazard_mirrors_additive_compatibility() -> None:
    assert comparison_hazard("virtual_time", "sim_time")
    assert comparison_hazard("cost", "duration")
    assert not comparison_hazard("sim_time", "duration")
    assert not comparison_hazard(UNKNOWN, "virtual_time")


# -- the RPR1xx rules, pinned against fixtures ---------------------------------


def test_rpr101_dimension_arithmetic() -> None:
    assert findings_in("dimarith") == [
        ("RPR101", "mixing.py", 14),  # virtual_time + sim_time
        ("RPR101", "mixing.py", 18),  # cost - duration
        ("RPR101", "mixing.py", 22),  # weight % rate
        ("RPR101", "mixing.py", 26),  # augmented assignment
    ]


def test_rpr102_dimension_comparison() -> None:
    assert findings_in("dimcmp") == [
        ("RPR102", "ordering.py", 13),  # virtual_time < sim_time
        ("RPR102", "ordering.py", 17),  # cost >= duration
        ("RPR102", "ordering.py", 21),  # weight == rate
        ("RPR102", "ordering.py", 25),  # chained comparison, first link
    ]


def test_rpr103_dimension_boundary() -> None:
    # The 22/28 pair is the epoch-anchoring bug class fixed in
    # MetricsCollector / FleetMetricsCollector / HealthMonitor: a bare
    # interval (duration) handed to an absolute-time parameter.
    assert findings_in("dimcall") == [
        ("RPR103", "boundary.py", 22),  # duration -> at() registry entry
        ("RPR103", "boundary.py", 28),  # duration -> own method summary
        ("RPR103", "boundary.py", 36),  # virtual_time returned as SimTime
        ("RPR103", "boundary.py", 40),  # virtual_time bound to Duration
        ("RPR103", "boundary.py", 51),  # sim_time into a declared tag
    ]


def test_rpr110_rng_taint_scoped_to_schedulers() -> None:
    # ArrivalProcess in the same package performs identical writes
    # outside scheduler scope and must contribute nothing.
    assert findings_in("rngtaint") == [
        ("RPR110", "jitter.py", 24),  # tainted ordering-sensitive write
        ("RPR110", "jitter.py", 28),  # tainted heap key
        ("RPR110", "jitter.py", 32),  # tainted scheduler comparison
    ]


def test_rpr111_wall_clock_taint_follows_the_value() -> None:
    # RPR001 flags the call sites; RPR111 follows the value -- including
    # through the arithmetic laundering in `launder()`.
    assert findings_in("wallsim", code="RPR111") == [
        ("RPR111", "drift.py", 26),  # direct host read into sim state
        ("RPR111", "drift.py", 31),  # taint survives arithmetic
        ("RPR111", "drift.py", 36),  # host time into the event queue
        ("RPR111", "drift.py", 40),  # host read returned as SimTime
    ]


# -- the clean-tree gate -------------------------------------------------------


def test_src_repro_is_clean_under_dataflow_rules() -> None:
    """`python -m repro.analysis --select RPR101,...,RPR111 src/repro`
    exits 0: the annotated tree carries no dimension or taint hazards
    (the acceptance gate for the RPR1xx rollout)."""
    result = Analyzer(select=DATAFLOW_CODES).run([SRC_REPRO])
    assert result.files_analyzed > 50
    assert result.findings == []
