"""2DFQ-specific behaviour: staggered eligibility and size partitioning."""

import pytest

from repro.core import TwoDFQEScheduler, TwoDFQScheduler, WF2QScheduler

from conftest import SchedulerHarness, make_request


class TestStaggeredEligibility:
    def test_thread_zero_matches_wf2q_eligibility(self):
        """On thread 0 the stagger offset is zero, so 2DFQ's eligibility
        set equals WF2Q's; the worked example diverges only via other
        threads' choices."""
        for scheduler_cls in (TwoDFQScheduler, WF2QScheduler):
            s = scheduler_cls(num_threads=2)
            a1 = make_request("A", 1.0)
            s.enqueue(a1, 0.0)
            s.enqueue(make_request("A", 1.0), 0.0)
            s.enqueue(make_request("C", 4.0), 0.0)
            assert s.dequeue(0, 0.0).tenant_id == "A"
            # A's next start tag is 1 > v(0): ineligible on thread 0; C
            # (start 0) must win there under both policies.
            assert s.dequeue(0, 0.0).tenant_id == "C"

    def test_high_thread_sees_small_requests_earlier(self):
        """At t=0.5 (v=0.5) A's second request (S=1) is eligible on the
        high thread under 2DFQ -- S - (1/2)*1 = 0.5 <= v -- but not
        under WF2Q, which therefore picks the large request instead.
        This is exactly the divergence of Figures 5d vs 6b."""
        s = TwoDFQScheduler(num_threads=2)
        s.enqueue(make_request("A", 1.0), 0.0)
        s.enqueue(make_request("A", 1.0), 0.0)
        s.enqueue(make_request("C", 4.0), 0.0)
        assert s.dequeue(0, 0.0).tenant_id == "A"
        # Two active tenants on capacity 2 -> dv/dt = 1; at t=0.5, v=0.5.
        assert s.dequeue(1, 0.5).tenant_id == "A"

        w = WF2QScheduler(num_threads=2)
        w.enqueue(make_request("A", 1.0), 0.0)
        w.enqueue(make_request("A", 1.0), 0.0)
        w.enqueue(make_request("C", 4.0), 0.0)
        assert w.dequeue(0, 0.0).tenant_id == "A"
        assert w.dequeue(1, 0.5).tenant_id == "C"

    def test_stagger_proportional_to_cost(self):
        """Large requests get proportionally earlier eligibility on high
        threads -- (i/n) * l -- so on the top thread a large request can
        be eligible while still behind in start tag."""
        s = TwoDFQScheduler(num_threads=4)
        s.enqueue(make_request("C", 100.0), 0.0)
        s.enqueue(make_request("C", 100.0), 0.0)
        s.dequeue(0, 0.0)  # S_C advances to 100
        # v(now) ~ 0; offset on thread 3 = (3/4)*100 = 75 < 100: still
        # ineligible -> policy returns via fallback anyway (work
        # conservation); verify through the internal selection hook.
        assert s._select(3, s.virtual_time(0.0)) is None
        assert s.dequeue(3, 0.0) is not None  # fallback keeps it work conserving


class TestSizePartitioning:
    def test_threads_partition_by_cost(self):
        """With half small and half large backlogged tenants on 8
        threads, 2DFQ confines large requests to the low-index threads
        (Figure 8b)."""
        costs = {f"S{i}": 1.0 for i in range(8)}
        costs.update({f"L{i}": 100.0 for i in range(8)})
        s = TwoDFQScheduler(num_threads=8, thread_rate=100.0)
        harness = SchedulerHarness(s, costs)
        slots = harness.run(60.0)
        large_threads = {
            thread for start, thread, tenant in slots
            if tenant.startswith("L") and start > 5.0
        }
        small_threads = {
            thread for start, thread, tenant in slots
            if tenant.startswith("S") and start > 5.0
        }
        # Large requests keep to the bottom half; the top threads serve
        # smalls exclusively after warmup.
        assert max(large_threads) <= 4
        assert min(large_threads) == 0
        assert 7 in small_threads

    def test_wf2q_does_not_partition(self):
        costs = {f"S{i}": 1.0 for i in range(8)}
        costs.update({f"L{i}": 100.0 for i in range(8)})
        s = WF2QScheduler(num_threads=8, thread_rate=100.0)
        harness = SchedulerHarness(s, costs)
        slots = harness.run(60.0)
        large_threads = {
            thread for start, thread, tenant in slots
            if tenant.startswith("L") and start > 5.0
        }
        assert max(large_threads) == 7  # larges reach the top thread


class TestTwoDFQE:
    def test_default_estimator_is_pessimistic(self):
        s = TwoDFQEScheduler(num_threads=2)
        assert s.estimator.name == "pessimistic"
        assert s.estimator.alpha == 0.99

    def test_alpha_and_initial_forwarded(self):
        s = TwoDFQEScheduler(num_threads=2, alpha=0.9, initial_estimate=50.0)
        assert s.estimator.alpha == 0.9
        assert s.estimator.initial_estimate == 50.0

    def test_explicit_estimator_wins(self):
        from repro.estimation import EMAEstimator

        s = TwoDFQEScheduler(num_threads=2, estimator=EMAEstimator())
        assert s.estimator.name == "ema"

    def test_unpredictable_tenant_biased_to_low_threads(self):
        """After one expensive surprise, a tenant's pessimistic estimate
        keeps its (even cheap) requests ineligible on high-index threads
        -- the spatial isolation mechanism of §5 -- while a predictable
        cheap tenant stays eligible there."""
        s = TwoDFQEScheduler(num_threads=4, thread_rate=100.0)
        # Teach the estimator: U once cost 400, P is reliably cheap.
        for tenant, seen_cost in (("U", 400.0), ("P", 1.0)):
            r = make_request(tenant, seen_cost, api="G")
            s.enqueue(r, 0.0)
            out = s.dequeue(0, 0.0)
            s.complete(out, seen_cost, 0.0)
        assert s.estimator.peek("U", "G") == pytest.approx(400.0)
        # Both tenants enqueue two cheap requests and dispatch one, so
        # each has a head request and an advanced start tag.
        for tenant in ("U", "P"):
            s.enqueue(make_request(tenant, 2.0, api="G"), 0.0)
            s.enqueue(make_request(tenant, 2.0, api="G"), 0.0)
            s.dequeue(0, 0.0)
        # S_U = 400 (charged the pessimistic estimate), S_P = 1.  On the
        # top thread U's offset is (3/4)*400 = 300, leaving it 100 ahead
        # of virtual time (~0): ineligible.  P's offset makes it
        # eligible almost immediately.
        state_u = s.tenant_state("U")
        state_p = s.tenant_state("P")
        assert state_u.start_tag > state_p.start_tag
        # A virtual instant where P is eligible on the top thread
        # (needs v >= S_P - 0.75) but U is far from it (needs v >= 500).
        probe_virtual_time = state_p.start_tag + 2.0
        assert s._select(3, probe_virtual_time) is state_p
        assert s._select(0, state_u.start_tag - 1.0) is state_p
