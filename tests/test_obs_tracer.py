"""Tracer semantics, scheduler instrumentation, and the golden trace.

The golden-file test pins the *exact* decision-event stream of a tiny
seeded 2-tenant 2DFQ run against ``tests/data/golden_2dfq_trace.jsonl``.
The scenario is the paper's Figure 5/6 premise shrunk to two tenants: A
sends unit-cost requests, B sends cost-4 requests, two unit-rate worker
threads, equal weights.  Under 2DFQ thread 0 (stagger 0) runs the small
requests and thread 1 (stagger 1/2) the large ones, and every start/
finish tag in between is hand-checkable.

A second golden pins the 2DFQ^E estimated variant of the same scenario
(``tests/data/golden_2dfqe_trace.jsonl``): a pessimistic estimator with
initial estimate 1.0 under-charges B's cost-4 requests at dispatch, so
the stream additionally exercises ``refresh_charge`` virtual-time
updates (interim usage exceeding the pre-paid credit) and ``estimate``
events (the estimator absorbing measured costs at completion).

Regenerate after an *intentional* semantics change with::

    PYTHONPATH=src:tests python -c \
        "from test_obs_tracer import write_golden, write_golden_estimated; \
         write_golden(); write_golden_estimated()"
"""

import heapq
import itertools
import json
from pathlib import Path

import pytest

import repro.core.request as request_module
from repro.core import make_scheduler
from repro.core.request import Request
from repro.estimation.pessimistic import PessimisticEstimator
from repro.obs import EVENT_KINDS, TraceEvent, Tracer

GOLDEN = Path(__file__).parent / "data" / "golden_2dfq_trace.jsonl"
GOLDEN_E = Path(__file__).parent / "data" / "golden_2dfqe_trace.jsonl"


def run_golden_example():
    """The tiny seeded 2-tenant 2DFQ run behind the golden trace.

    Deterministic worked-example sequencer: both tenants enqueue before
    the first dispatch, threads are offered work in ascending index
    order, every dispatched request is immediately replaced so both
    tenants stay backlogged, completions are delivered in time order.
    Caller must reset ``repro.core.request._SEQUENCE`` first so seqnos
    are stable.
    """
    scheduler = make_scheduler("2dfq", num_threads=2, thread_rate=1.0)
    tracer = Tracer("golden-2dfq")
    scheduler.attach_tracer(tracer)
    costs = {"A": 1.0, "B": 4.0}

    def enqueue(tenant, now):
        scheduler.enqueue(Request(tenant_id=tenant, cost=costs[tenant]), now)

    for tenant in ("A", "B"):
        enqueue(tenant, 0.0)
    free_heap = [(0.0, 0), (0.0, 1)]
    heapq.heapify(free_heap)
    completions = []
    while free_heap:
        now, thread_id = heapq.heappop(free_heap)
        if now >= 8.0:
            continue
        while completions and completions[0][0] <= now:
            end, _, done = heapq.heappop(completions)
            scheduler.complete(done, done.cost, end)
        request = scheduler.dequeue(thread_id, now)
        end = now + request.cost
        enqueue(request.tenant_id, now)
        heapq.heappush(completions, (end, request.seqno, request))
        heapq.heappush(free_heap, (end, thread_id))
    return tracer


def run_golden_estimated_example():
    """The 2DFQ^E variant of the golden run (estimated costs).

    Same two-tenant scenario as :func:`run_golden_example`, but with a
    pessimistic estimator starting at 1.0 -- so B's cost-4 requests are
    under-estimated at first dispatch -- and with the server-side usage
    reporting modeled in: each running request reports 1.0 usage at unit
    intervals (the paper's refresh charging, §5) and completes with its
    true cost (retroactive charging).  Caller must reset
    ``repro.core.request._SEQUENCE`` first.
    """
    scheduler = make_scheduler(
        "2dfq-e", num_threads=2, thread_rate=1.0, estimator=PessimisticEstimator()
    )
    tracer = Tracer("golden-2dfq-e")
    scheduler.attach_tracer(tracer)
    scheduler.estimator.attach_tracer(tracer)
    costs = {"A": 1.0, "B": 4.0}

    def enqueue(tenant, now):
        scheduler.enqueue(
            Request(tenant_id=tenant, cost=costs[tenant], api="op"), now
        )

    for tenant in ("A", "B"):
        enqueue(tenant, 0.0)
    free_heap = [(0.0, 0), (0.0, 1)]
    heapq.heapify(free_heap)
    # (time, seqno, phase, request): phase 0 = interim refresh report,
    # phase 1 = completion.  The (time, seqno, phase) prefix is unique,
    # so requests never need comparing.
    pending = []
    while free_heap:
        now, thread_id = heapq.heappop(free_heap)
        if now >= 8.0:
            continue
        while pending and pending[0][0] <= now:
            t, _, phase, req = heapq.heappop(pending)
            if phase == 0:
                scheduler.refresh(req, 1.0, t)
            else:
                scheduler.complete(req, req.cost, t)
        request = scheduler.dequeue(thread_id, now)
        end = now + request.cost
        enqueue(request.tenant_id, now)
        for k in range(1, int(request.cost)):
            heapq.heappush(pending, (now + float(k), request.seqno, 0, request))
        heapq.heappush(pending, (end, request.seqno, 1, request))
        heapq.heappush(free_heap, (end, thread_id))
    return tracer


def _write_golden_file(path, tracer):
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for event in tracer.events:
            fh.write(json.dumps(event.as_dict()) + "\n")


def write_golden():
    """Regenerate the committed golden trace (intentional changes only)."""
    request_module._SEQUENCE = itertools.count()
    _write_golden_file(GOLDEN, run_golden_example())


def write_golden_estimated():
    """Regenerate the committed 2DFQ^E golden trace."""
    request_module._SEQUENCE = itertools.count()
    _write_golden_file(GOLDEN_E, run_golden_estimated_example())


class TestTracerSemantics:
    def test_emit_and_of_kind(self):
        tracer = Tracer("t")
        tracer.vt_update(0.0, 0.0, "A", reason="tenant_active")
        tracer.vt_update(1.0, 1.0, None, reason="refresh_charge")
        assert len(tracer) == 2
        assert [e.kind for e in tracer] == ["vt_update", "vt_update"]
        assert len(tracer.of_kind("vt_update")) == 2
        assert tracer.of_kind("dispatch") == []

    def test_disabled_tracer_drops_everything(self):
        tracer = Tracer("t", enabled=False)
        tracer.emit(TraceEvent("enqueue", 0.0, 0.0, "A", {}))
        tracer.dispatch(
            0.0, 0.0, "A", seqno=0, api="x", thread=0, estimate=1.0,
            start_tag_after=1.0, backlog=1,
        )
        assert len(tracer) == 0

    def test_max_events_counts_overflow(self):
        tracer = Tracer("t", max_events=2)
        for i in range(5):
            tracer.vt_update(float(i), 0.0, None, reason="r")
        assert len(tracer) == 2
        assert tracer.dropped_events == 3

    def test_typed_emitters_update_counters(self):
        tracer = Tracer("t")
        tracer.dispatch(
            0.0, 0.0, "A", seqno=0, api="x", thread=0, estimate=1.0,
            start_tag_after=1.0, backlog=1,
        )
        tracer.complete(
            1.0, 1.0, "A", seqno=0, api="x", actual=1.5, charged=1.0,
            start_tag_after=1.0, running=0,
        )
        tracer.estimate(1.0, "A", api="x", old=1.0, new=1.25, actual=1.5)
        snap = tracer.registry.snapshot()
        assert snap["scheduler.dispatches"] == 1
        assert snap["scheduler.completions"] == 1
        assert snap["estimator.refreshes"] == 1
        # The completion event carries the estimate error.
        (complete,) = tracer.of_kind("complete")
        assert complete.data["error"] == pytest.approx(-0.5)

    def test_event_as_dict_headers_first(self):
        event = TraceEvent("select", 1.0, 2.0, "A", {"thread": 0})
        record = event.as_dict()
        assert list(record)[:4] == ["kind", "t", "vt", "tenant"]
        assert record["thread"] == 0

    def test_as_dict_omits_absent_header_fields(self):
        record = TraceEvent("estimate", 1.0, None, None, {"api": "x"}).as_dict()
        assert "vt" not in record and "tenant" not in record


class TestAttachSemantics:
    def test_attach_none_and_disabled_keep_fast_path(self):
        scheduler = make_scheduler("2dfq", num_threads=2)
        assert scheduler.tracer is None
        scheduler.attach_tracer(None)
        assert scheduler._trace is None
        scheduler.attach_tracer(Tracer("t", enabled=False))
        assert scheduler._trace is None

    def test_attach_enabled_tracer(self):
        scheduler = make_scheduler("2dfq", num_threads=2)
        tracer = Tracer("t")
        scheduler.attach_tracer(tracer)
        assert scheduler.tracer is tracer

    def test_untraced_run_emits_nothing(self):
        # The default: no tracer, every site is one attribute check.
        scheduler = make_scheduler("2dfq", num_threads=1)
        scheduler.enqueue(Request(tenant_id="A", cost=1.0), 0.0)
        request = scheduler.dequeue(0, 0.0)
        scheduler.complete(request, request.cost, 1.0)
        assert scheduler.tracer is None


class TestInstrumentedRun:
    def test_event_kinds_covered_and_well_formed(self):
        scheduler = make_scheduler(
            "2dfq-e",
            num_threads=2,
            estimator=PessimisticEstimator(),
        )
        tracer = Tracer("run")
        scheduler.attach_tracer(tracer)
        scheduler.estimator.attach_tracer(tracer)
        for i in range(4):
            scheduler.enqueue(
                Request(tenant_id=f"T{i % 2}", cost=1.0 + i, api="op"), 0.0
            )
        now = 0.0
        for _ in range(4):
            now += 1.0
            request = scheduler.dequeue(0, now)
            # The server stamps completion_time before complete().
            request.completion_time = now + 0.5
            scheduler.complete(request, request.cost, now + 0.5)
        # The remaining taxonomy: a cancelled request plus the fault /
        # invariant kinds emitted by repro.faults and repro.validate.
        now += 1.0
        doomed = Request(tenant_id="T0", cost=2.0, api="op")
        scheduler.enqueue(doomed, now)
        assert scheduler.cancel(doomed, now)
        tracer.fault(now, "worker_crash", worker=0)
        tracer.invariant(now, "vt-monotonic", tenant="T0", message="test")
        tracer.audit(now, "bursty", tenant="T0", tripped=True, cov=1.5)
        tracer.route(
            now, "T0", seqno=doomed.seqno, server=1, policy="round-robin",
            healthy=4, backlog=0, accepted=True,
        )
        kinds = {event.kind for event in tracer}
        assert kinds == set(EVENT_KINDS)
        for event in tracer:
            assert event.kind in EVENT_KINDS
            assert event.t >= 0.0
        # One select+dispatch pair per dequeue, in order.
        selects = tracer.of_kind("select")
        dispatches = tracer.of_kind("dispatch")
        assert len(selects) == len(dispatches) == 4
        assert tracer.registry.snapshot()["scheduler.dispatches"] == 4

    def test_select_event_carries_decision_state(self):
        scheduler = make_scheduler("2dfq", num_threads=2)
        tracer = Tracer("run")
        scheduler.attach_tracer(tracer)
        scheduler.enqueue(Request(tenant_id="A", cost=1.0), 0.0)
        scheduler.enqueue(Request(tenant_id="B", cost=4.0), 0.0)
        scheduler.dequeue(1, 0.0)
        (select,) = tracer.of_kind("select")
        assert select.data["thread"] == 1
        assert select.data["policy"] == "2dfq"
        assert select.data["stagger"] == pytest.approx(0.5)
        assert select.data["backlogged"] == 2
        # Two backlogged tenants sit below the adaptive crossover, so
        # the default "auto" mode runs the linear scan here.
        assert select.data["indexed"] is False
        assert isinstance(select.data["fallback"], bool)

    def test_refresh_charging_traced(self):
        scheduler = make_scheduler("wfq", num_threads=1)
        tracer = Tracer("run")
        scheduler.attach_tracer(tracer)
        scheduler.enqueue(Request(tenant_id="A", cost=4.0), 0.0)
        request = scheduler.dequeue(0, 0.0)
        # Report more interim usage than the pre-paid credit.
        scheduler.refresh(request, 5.0, 1.0)
        refreshes = [
            e for e in tracer.of_kind("vt_update")
            if e.data["reason"] == "refresh_charge"
        ]
        assert len(refreshes) == 1
        assert refreshes[0].data["usage"] == pytest.approx(5.0)
        scheduler.complete(request, request.cost, 2.0)


class TestGoldenTrace:
    @pytest.fixture(autouse=True)
    def _fresh_seqnos(self, monkeypatch):
        monkeypatch.setattr(request_module, "_SEQUENCE", itertools.count())

    def test_matches_committed_golden_file(self):
        tracer = run_golden_example()
        produced = [event.as_dict() for event in tracer.events]
        with GOLDEN.open() as fh:
            expected = [json.loads(line) for line in fh]
        assert len(produced) == len(expected)
        for i, (got, want) in enumerate(zip(produced, expected)):
            assert got == want, f"event {i} diverged"

    def test_pinned_worked_example_values(self):
        # Hand-derived from the paper's tag arithmetic: capacity 2,
        # active weight 2, so v advances at 1/s.  Both tenants start at
        # S=0; A's head finish tag is 1, B's is 4.
        tracer = run_golden_example()
        selects = tracer.of_kind("select")
        first, second = selects[0], selects[1]
        # Thread 0 (stagger 0): both eligible at v=0, min finish = A.
        assert first.tenant == "A"
        assert first.data["thread"] == 0
        assert first.data["stagger"] == pytest.approx(0.0)
        assert first.data["eligible"] == 2
        assert first.data["start_tag"] == pytest.approx(0.0)
        assert first.data["finish_tag"] == pytest.approx(1.0)
        # Thread 1 (stagger 1/2): A's replacement has S=1, staggered
        # 1 - 0.5*1 = 0.5 > v=0, so only B (0 - 0.5*4 = -2) is eligible
        # -- the large request lands on the staggered thread.
        assert second.tenant == "B"
        assert second.data["thread"] == 1
        assert second.data["stagger"] == pytest.approx(0.5)
        assert second.data["eligible"] == 1
        assert second.data["finish_tag"] == pytest.approx(4.0)
        # 2DFQ keeps the partition for the whole horizon: thread 0
        # serves only A, thread 1 only B.
        for select in selects:
            expected_tenant = "A" if select.data["thread"] == 0 else "B"
            assert select.tenant == expected_tenant
        # Charging moves the start tag by estimate/weight at every
        # dispatch (Figure 7, lines 22-24).
        for dispatch in tracer.of_kind("dispatch"):
            assert dispatch.data["start_tag_after"] == pytest.approx(
                dispatch.data["estimate"]
                + next(
                    s.data["start_tag"]
                    for s in selects
                    if s.data.get("thread") == dispatch.data["thread"]
                    and s.t == dispatch.t
                )
            )

    def test_golden_covers_expected_kinds(self):
        tracer = run_golden_example()
        kinds = {event.kind for event in tracer}
        assert kinds == {"vt_update", "enqueue", "select", "dispatch", "complete"}


class TestGoldenEstimatedTrace:
    @pytest.fixture(autouse=True)
    def _fresh_seqnos(self, monkeypatch):
        monkeypatch.setattr(request_module, "_SEQUENCE", itertools.count())

    def test_matches_committed_golden_file(self):
        tracer = run_golden_estimated_example()
        produced = [event.as_dict() for event in tracer.events]
        with GOLDEN_E.open() as fh:
            expected = [json.loads(line) for line in fh]
        assert len(produced) == len(expected)
        for i, (got, want) in enumerate(zip(produced, expected)):
            assert got == want, f"event {i} diverged"

    def test_covers_the_estimator_event_path(self):
        tracer = run_golden_estimated_example()
        kinds = {event.kind for event in tracer}
        # The known-cost golden never exercises these two.
        assert "estimate" in kinds
        refreshes = [
            e for e in tracer.of_kind("vt_update")
            if e.data["reason"] == "refresh_charge"
        ]
        assert refreshes, "under-estimated B requests must refresh-charge"
        assert all(e.tenant == "B" for e in refreshes)

    def test_pessimistic_estimator_learns_b(self):
        tracer = run_golden_estimated_example()
        b_dispatches = [
            e for e in tracer.of_kind("dispatch") if e.tenant == "B"
        ]
        assert len(b_dispatches) >= 2
        # Both B dispatches inside the horizon happen before B's first
        # completion (the closed loop keeps two in flight), so both are
        # charged the initial estimate 1.0 -- far below the true cost 4.
        for dispatch in b_dispatches:
            assert dispatch.data["estimate"] == pytest.approx(1.0)
        # Completion reconciliation reports the under-charge...
        b_completes = [
            e for e in tracer.of_kind("complete") if e.tenant == "B"
        ]
        assert b_completes[0].data["error"] == pytest.approx(1.0 - 4.0)
        # ...and the pessimistic max-decay estimator absorbs the real
        # cost the moment it observes it.
        b_estimates = [
            e for e in tracer.of_kind("estimate") if e.tenant == "B"
        ]
        assert b_estimates[0].data["old"] is None
        assert b_estimates[0].data["new"] == pytest.approx(4.0)
