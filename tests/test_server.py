"""Unit tests for the thread-pool server."""

import pytest

from repro.core import FIFOScheduler, make_scheduler
from repro.core.request import Request
from repro.errors import ConfigurationError
from repro.simulator import Simulation, ThreadPoolServer


def build(num_threads=2, rate=1.0, scheduler_name="fifo", refresh=None, **kw):
    sim = Simulation()
    scheduler = make_scheduler(scheduler_name, num_threads=num_threads,
                               thread_rate=rate, **kw)
    server = ThreadPoolServer(
        sim, scheduler, num_threads=num_threads, rate=rate,
        refresh_interval=refresh,
    )
    return sim, server


def req(tenant="A", cost=1.0, api="x"):
    return Request(tenant_id=tenant, cost=cost, api=api)


class TestExecution:
    def test_request_runs_for_cost_over_rate(self):
        sim, server = build(num_threads=1, rate=2.0)
        done = []
        server.on_complete(lambda r: done.append((r.tenant_id, sim.now)))
        sim.at(0.0, server.submit, req(cost=10.0))
        sim.run()
        assert done == [("A", 5.0)]

    def test_parallel_execution_across_threads(self):
        sim, server = build(num_threads=2)
        done = []
        server.on_complete(lambda r: done.append(sim.now))
        sim.at(0.0, server.submit, req(cost=3.0))
        sim.at(0.0, server.submit, req(tenant="B", cost=3.0))
        sim.run()
        assert done == [3.0, 3.0]

    def test_queueing_when_all_threads_busy(self):
        sim, server = build(num_threads=1)
        done = []
        server.on_complete(lambda r: done.append((r.tenant_id, sim.now)))
        sim.at(0.0, server.submit, req("A", 2.0))
        sim.at(0.0, server.submit, req("B", 1.0))
        sim.run()
        assert done == [("A", 2.0), ("B", 3.0)]

    def test_timestamps_recorded(self):
        sim, server = build(num_threads=1)
        sim.at(1.0, server.submit, req("A", 2.0))
        sim.at(1.0, server.submit, req("B", 1.0))
        completed = []
        server.on_complete(completed.append)
        sim.run()
        a, b = completed
        assert a.arrival_time == 1.0 and a.dispatch_time == 1.0
        assert a.completion_time == 3.0
        assert b.arrival_time == 1.0 and b.dispatch_time == 3.0
        assert b.latency == pytest.approx(3.0)

    def test_dispatch_order_descending_by_default(self):
        sim, server = build(num_threads=4)
        threads = []
        server.on_dispatch(lambda r: threads.append(r.thread_id))
        sim.at(0.0, server.submit, req("A", 1.0))
        sim.at(0.0, server.submit, req("B", 1.0))
        sim.run(until=0.5)
        assert threads == [3, 2]

    def test_completed_cost_tracking(self):
        sim, server = build(num_threads=1)
        sim.at(0.0, server.submit, req("A", 2.0))
        sim.at(0.0, server.submit, req("A", 3.0))
        sim.run()
        assert server.completed_cost("A") == pytest.approx(5.0)
        assert server.completed_requests == 2

    def test_service_received_counts_partial_progress(self):
        sim, server = build(num_threads=1, rate=1.0)
        sim.at(0.0, server.submit, req("A", 10.0))
        sim.run(until=4.0)
        assert server.service_received("A") == pytest.approx(4.0)


class TestRefreshCharging:
    def test_refresh_reports_incremental_usage(self):
        sim, server = build(num_threads=1, scheduler_name="wfq-e",
                            refresh=1.0, initial_estimate=1.0)
        scheduler = server.scheduler
        sim.at(0.0, server.submit, req("A", 5.0))
        sim.run(until=3.5)
        # After 3 refresh ticks the tenant has been charged ~3 units
        # beyond the initial estimate's credit.
        state = scheduler.tenant_state("A")
        assert state.start_tag == pytest.approx(3.0, abs=0.01)

    def test_no_refresh_when_disabled(self):
        sim, server = build(num_threads=1, scheduler_name="wfq-e",
                            refresh=None, initial_estimate=1.0)
        scheduler = server.scheduler
        sim.at(0.0, server.submit, req("A", 5.0))
        sim.run(until=3.5)
        assert scheduler.tenant_state("A").start_tag == pytest.approx(1.0)

    def test_total_reported_usage_equals_cost(self):
        sim, server = build(num_threads=1, scheduler_name="wfq-e",
                            refresh=0.3, initial_estimate=1.0)
        done = []
        server.on_complete(done.append)
        sim.at(0.0, server.submit, req("A", 5.0))
        sim.run()
        assert done[0].reported_usage == pytest.approx(5.0)


class TestValidation:
    def test_scheduler_thread_mismatch(self):
        sim = Simulation()
        scheduler = FIFOScheduler(num_threads=2)
        with pytest.raises(ConfigurationError):
            ThreadPoolServer(sim, scheduler, num_threads=4)

    def test_invalid_rate(self):
        sim = Simulation()
        scheduler = FIFOScheduler(num_threads=1)
        with pytest.raises(ConfigurationError):
            ThreadPoolServer(sim, scheduler, num_threads=1, rate=0.0)

    def test_invalid_refresh_interval(self):
        sim = Simulation()
        scheduler = FIFOScheduler(num_threads=1)
        with pytest.raises(ConfigurationError):
            ThreadPoolServer(
                sim, scheduler, num_threads=1, refresh_interval=-0.1
            )

    def test_invalid_dispatch_order(self):
        sim = Simulation()
        scheduler = FIFOScheduler(num_threads=1)
        with pytest.raises(ConfigurationError):
            ThreadPoolServer(
                sim, scheduler, num_threads=1, dispatch_order="random"
            )
