"""Fleet-granularity faults: the ServerCrash/ServerSlowdown plan DSL,
FleetInjector dispatch, the single-server/fleet injector boundary, and
the flight-recorder dump pin for crash/failover trigger events.
"""

from __future__ import annotations

import pytest

from repro.core.registry import make_scheduler
from repro.core.request import Request
from repro.errors import ConfigurationError
from repro.faults import (
    DeadlinePolicy,
    FaultInjector,
    FaultPlan,
    ServerCrash,
    ServerSlowdown,
    WorkerSlowdown,
)
from repro.fleet import FailoverPolicy, Fleet, FleetInjector
from repro.obs import FlightRecorder, Tracer
from repro.obs.events import FAULT
from repro.simulator.clock import Simulation
from repro.simulator.server import ThreadPoolServer
from repro.simulator.sources import BackloggedSource


def build_fleet(num_servers=3, rate=100.0, **kwargs):
    sim = Simulation()
    servers = [
        ThreadPoolServer(sim, make_scheduler("2dfq", num_threads=2), 2, rate=rate)
        for _ in range(num_servers)
    ]
    return sim, Fleet(sim, servers, router="round-robin", **kwargs)


class TestFleetFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            server_crashes=(
                ServerCrash(server=1, at=0.5, restart_at=2.0),
                ServerCrash(server=2, at=1.0),
            ),
            server_slowdowns=(
                ServerSlowdown(server=0, start=0.2, end=0.8, factor=0.25),
            ),
            seed=3,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert plan.has_fleet_faults
        assert not plan.is_empty

    def test_file_round_trip(self, tmp_path):
        plan = FaultPlan(server_crashes=(ServerCrash(server=0, at=1.0),))
        path = tmp_path / "plan.json"
        plan.dump(path)
        assert FaultPlan.load(path) == plan

    def test_committed_fleet_chaos_plan_loads(self):
        plan = FaultPlan.load("tests/data/fleet_crash_plan.json")
        assert plan.has_fleet_faults
        assert plan.server_crashes[0].server == 1
        assert plan.server_slowdowns[0].factor == 0.5

    @pytest.mark.parametrize(
        "build",
        [
            lambda: ServerCrash(server=-1, at=1.0),
            lambda: ServerCrash(server=0, at=-0.1),
            lambda: ServerCrash(server=0, at=1.0, restart_at=0.5),
            lambda: ServerSlowdown(server=0, start=1.0, end=0.5, factor=0.5),
            lambda: ServerSlowdown(server=0, start=0.0, end=1.0, factor=-1.0),
            lambda: ServerSlowdown(server=-2, start=0.0, end=1.0, factor=0.5),
        ],
    )
    def test_invalid_fleet_faults_rejected(self, build):
        with pytest.raises(ConfigurationError):
            build()

    def test_worker_injector_rejects_fleet_plans(self):
        sim = Simulation()
        server = ThreadPoolServer(
            sim, make_scheduler("2dfq", num_threads=2), 2
        )
        plan = FaultPlan(server_crashes=(ServerCrash(server=0, at=1.0),))
        with pytest.raises(ConfigurationError, match="fleet-granularity"):
            FaultInjector(server, plan).install()

    def test_fleet_injector_rejects_worker_plans(self):
        _, fleet = build_fleet()
        plan = FaultPlan(
            slowdowns=(
                WorkerSlowdown(worker=0, start=0.0, end=1.0, factor=0.5),
            )
        )
        with pytest.raises(ConfigurationError, match="worker-granularity"):
            FleetInjector(fleet, plan).install()


class TestFleetInjectorDispatch:
    def test_crash_and_restart_dispatch(self):
        sim, fleet = build_fleet(health_interval=0.05)
        plan = FaultPlan(
            server_crashes=(ServerCrash(server=1, at=0.3, restart_at=1.0),)
        )
        injector = FleetInjector(fleet, plan)
        injector.install()
        sim.run(until=2.0)
        assert injector.counts["server_crashes"] == 1
        assert injector.counts["server_restarts"] == 1
        assert fleet.counts["server_crashes"] == 1
        assert fleet.counts["server_restores"] == 1
        assert fleet.down == frozenset()  # detected down, then back up
        assert fleet.counts["detections"] == 1
        assert fleet.counts["recoveries"] == 1

    def test_slowdown_stretches_completion(self):
        # cost 50 at rate 100 normally takes 0.5s; at factor 0.5 for the
        # whole run it takes 1.0s.
        sim, fleet = build_fleet(num_servers=1, failover=None)
        plan = FaultPlan(
            server_slowdowns=(
                ServerSlowdown(server=0, start=0.0, end=10.0, factor=0.5),
            )
        )
        injector = FleetInjector(fleet, plan)
        injector.install()
        request = Request(tenant_id="a", cost=50.0)
        fleet.submit(request)
        sim.run(until=10.0)
        assert injector.counts["server_slowdowns"] == 1
        assert request.completion_time == pytest.approx(1.0)

    def test_slowed_server_stays_routable(self):
        sim, fleet = build_fleet(num_servers=2, health_interval=0.05)
        plan = FaultPlan(
            server_slowdowns=(
                ServerSlowdown(server=0, start=0.0, end=5.0, factor=0.1),
            )
        )
        FleetInjector(fleet, plan).install()
        for i in range(4):
            fleet.submit(Request(tenant_id="a", cost=1.0))
        sim.run(until=5.0)
        # Degraded, not dead: never marked down, work still lands there.
        assert fleet.down == frozenset()
        assert fleet.counts["detections"] == 0
        assert fleet.counts["completed"] == 4

    def test_fleet_deadline_expiry_retries_then_abandons(self):
        sim, fleet = build_fleet(num_servers=2, failover=None)
        # Jam both servers so the probe request can never finish in time.
        for server in fleet.servers:
            for _ in range(4):
                server.submit(Request(tenant_id="bg", cost=1000.0))
        plan = FaultPlan(
            deadlines=(
                DeadlinePolicy(
                    deadline=0.1,
                    max_retries=2,
                    backoff=0.01,
                    tenants=("probe",),
                ),
            )
        )
        injector = FleetInjector(fleet, plan)
        injector.install()
        abandoned = []
        fleet.on_abandon(abandoned.append)
        fleet.submit(Request(tenant_id="probe", cost=5.0))
        sim.run(until=5.0)
        assert injector.counts["deadline_expiries"] == 3
        assert injector.counts["retries"] == 2
        assert injector.counts["abandoned"] == 1
        assert [r.tenant_id for r in abandoned] == ["probe"]


class TestFleetFlightRecorder:
    def make_traced_fleet(self, recorder, **kwargs):
        sim, fleet = build_fleet(health_interval=0.02, **kwargs)
        tracer = Tracer("fleet-chaos")
        tracer.add_sink(recorder.on_event)
        fleet.attach_tracer(tracer)
        return sim, fleet, tracer

    def test_crash_and_failover_trigger_dumps(self):
        recorder = FlightRecorder(capacity=64)
        sim, fleet, tracer = self.make_traced_fleet(recorder)
        source = BackloggedSource(
            fleet, "a", lambda: ("A", 5.0), window=4, limit=40
        )
        source.start()
        sim.at(0.3, fleet.crash_server, 1)
        sim.run(until=10.0)
        triggers = [d["trigger"]["fault"] for d in recorder.dumps]
        # The crash itself, the monitor marking it down, and the drain.
        assert triggers[:3] == ["server_crash", "server_down", "failover"]
        assert all(d["trigger"]["kind"] == FAULT for d in recorder.dumps)
        # Each dump carries ring context (the ROUTE/ENQUEUE/... events
        # leading up to the trigger).
        assert all(len(d["ring"]) >= 1 for d in recorder.dumps)

    def test_dump_storm_is_capped(self):
        recorder = FlightRecorder(capacity=16, max_dumps=2)
        sim, fleet, tracer = self.make_traced_fleet(
            recorder, failover=FailoverPolicy(max_retries=0)
        )
        # Crash every server: crash + detection + drain + abandonment
        # events per server blow well past the cap.
        for i in range(3):
            fleet.submit(Request(tenant_id="a", cost=50.0))
            fleet.crash_server(i)
        sim.run(until=2.0)
        assert len(recorder.dumps) == 2
        assert recorder.suppressed_dumps > 0
        payload = recorder.payload()
        assert payload["suppressed_dumps"] == recorder.suppressed_dumps
