"""Behavioural tests specific to the baseline scheduler variants."""

import pytest

from repro.core import (
    DRRScheduler,
    MSF2QScheduler,
    SFQScheduler,
    WF2QPlusScheduler,
    WF2QScheduler,
    WFQScheduler,
)
from repro.estimation import LastValueEstimator

from conftest import SchedulerHarness, make_request


class TestWF2QEligibility:
    def test_ineligible_small_requests_skipped(self):
        """The defining WF2Q behaviour (Figure 5d): at v=0 the second
        small request (S=1) is ineligible, so the large request runs."""
        s = WF2QScheduler(num_threads=2)
        s.enqueue(make_request("A", 1.0), 0.0)
        s.enqueue(make_request("A", 1.0), 0.0)
        s.enqueue(make_request("C", 4.0), 0.0)
        assert s.dequeue(0, 0.0).tenant_id == "A"
        assert s.dequeue(1, 0.0).tenant_id == "C"

    def test_wfq_takes_small_requests_eagerly(self):
        """WFQ has no eligibility gate: it serves A twice first."""
        s = WFQScheduler(num_threads=2)
        s.enqueue(make_request("A", 1.0), 0.0)
        s.enqueue(make_request("A", 1.0), 0.0)
        s.enqueue(make_request("C", 4.0), 0.0)
        assert s.dequeue(0, 0.0).tenant_id == "A"
        assert s.dequeue(1, 0.0).tenant_id == "A"

    def test_work_conserving_fallback(self):
        """When nothing is eligible, WF2Q still dispatches (the naive
        work-conserving multi-thread extension of §2)."""
        s = WF2QScheduler(num_threads=1)
        s.enqueue(make_request("A", 1.0), 0.0)
        s.dequeue(0, 0.0)
        s.enqueue(make_request("A", 1.0), 0.0)
        # A's start tag (1) is ahead of v(0)=0: ineligible, yet served.
        assert s.dequeue(0, 0.0) is not None


class TestMSF2Q:
    def test_fallback_uses_min_start(self):
        s = MSF2QScheduler(num_threads=1)
        # Two tenants, both ineligible (start tags ahead of v).
        for tenant, cost in (("A", 2.0), ("B", 3.0)):
            s.enqueue(make_request(tenant, cost), 0.0)
            s.dequeue(0, 0.0)
            s.enqueue(make_request(tenant, cost), 0.0)
        # S_A = 2, S_B = 3, both > v ~ 0; fallback picks min start = A.
        assert s.dequeue(0, 0.0).tenant_id == "A"


class TestSFQ:
    def test_orders_by_start_tag(self):
        s = SFQScheduler(num_threads=1)
        s.enqueue(make_request("A", 100.0), 0.0)
        s.enqueue(make_request("B", 1.0), 0.0)
        first = s.dequeue(0, 0.0)  # both S=0; tie-break by size
        assert first.tenant_id == "B"
        # B's start advanced by 1; A still at 0 -> A next.
        assert s.dequeue(0, 0.0).tenant_id == "A"


class TestWF2QPlus:
    def test_virtual_time_jumps_to_min_start(self):
        s = WF2QPlusScheduler(num_threads=1)
        s.enqueue(make_request("A", 10.0), 0.0)
        s.dequeue(0, 0.0)
        s.enqueue(make_request("A", 10.0), 0.0)
        # v(0) = 0 but min start tag is 10; the WF2Q+ virtual time
        # function lifts v so the request is genuinely eligible.
        s.dequeue(0, 0.0)
        assert s.virtual_clock.value >= 10.0

    def test_same_long_run_fairness_as_wf2q(self):
        costs = {"small": 1.0, "big": 8.0}
        plus = SchedulerHarness(WF2QPlusScheduler(num_threads=2), costs)
        plus.run(200.0)
        service = plus.service_by_tenant(horizon=180.0)
        assert service["small"] == pytest.approx(service["big"], rel=0.25)


class TestDRR:
    def test_quantum_accumulates_for_large_requests(self):
        s = DRRScheduler(num_threads=1, quantum=2.0)
        s.enqueue(make_request("A", 5.0), 0.0)
        s.enqueue(make_request("A", 5.0), 0.0)
        s.enqueue(make_request("B", 1.0), 0.0)
        s.enqueue(make_request("B", 1.0), 0.0)
        # A needs three visits (deficit 2, 4, 6) before affording 5.
        order = [s.dequeue(0, 0.0).tenant_id for _ in range(4)]
        assert order.count("A") == 2 and order.count("B") == 2

    def test_adaptive_quantum_grows(self):
        s = DRRScheduler(num_threads=1)
        assert s.quantum == 1.0
        s.enqueue(make_request("A", 500.0), 0.0)
        s.dequeue(0, 0.0)
        assert s.quantum == 500.0

    def test_configured_quantum_respected(self):
        s = DRRScheduler(num_threads=1, quantum=64.0)
        s.enqueue(make_request("A", 500.0), 0.0)
        s.dequeue(0, 0.0)
        assert s.quantum == 64.0

    def test_invalid_quantum(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            DRRScheduler(num_threads=1, quantum=0.0)

    def test_estimated_costs_reconciled(self):
        est = LastValueEstimator(initial_estimate=1.0)
        s = DRRScheduler(num_threads=1, estimator=est, quantum=10.0)
        s.enqueue(make_request("A", 100.0), 0.0)
        s.enqueue(make_request("A", 1.0), 0.0)
        out = s.dequeue(0, 0.0)  # charged 1 (estimate)
        assert out.charged_cost == 1.0
        s.complete(out, 100.0, 100.0)
        # Retroactive: the extra 99 is debited from A's deficit.
        assert s.tenant_state("A").deficit == pytest.approx(10.0 - 1.0 - 99.0)


class TestFIFOandRR:
    def test_fifo_ignores_tenancy(self):
        from repro.core import FIFOScheduler

        s = FIFOScheduler(num_threads=1)
        order = []
        for tenant in ("A", "A", "A", "B"):
            s.enqueue(make_request(tenant, 1.0), 0.0)
        for _ in range(4):
            order.append(s.dequeue(0, 0.0).tenant_id)
        assert order == ["A", "A", "A", "B"]

    def test_round_robin_alternates(self):
        from repro.core import RoundRobinScheduler

        s = RoundRobinScheduler(num_threads=1)
        for tenant in ("A", "A", "A", "B", "B", "B"):
            s.enqueue(make_request(tenant, 1.0), 0.0)
        order = [s.dequeue(0, 0.0).tenant_id for _ in range(6)]
        assert order == ["A", "B", "A", "B", "A", "B"]
