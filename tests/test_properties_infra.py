"""Property-based tests on infrastructure invariants (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.estimation import EMAEstimator, PessimisticEstimator
from repro.metrics.gini import gini_index
from repro.simulator.gps import GPSReference
from repro.simulator.rng import make_rng, stable_hash

from conftest import make_request

cost_lists = st.lists(
    st.floats(min_value=0.01, max_value=1e6, allow_nan=False), min_size=1, max_size=40
)


class TestGPSProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        arrivals=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0),   # time
                st.sampled_from(["A", "B", "C"]),            # flow
                st.floats(min_value=0.01, max_value=50.0),   # cost
            ),
            min_size=1,
            max_size=25,
        ),
        capacity=st.floats(min_value=0.5, max_value=20.0),
    )
    def test_conservation_and_bounds(self, arrivals, capacity):
        """GPS never serves more than arrived per flow, nor more than
        capacity * time in total, and is work conserving while
        backlogged."""
        gps = GPSReference(capacity)
        arrivals = sorted(arrivals, key=lambda a: a[0])
        arrived: dict = {}
        for time, flow, cost in arrivals:
            gps.arrive(flow, cost, now=time)
            arrived[flow] = arrived.get(flow, 0.0) + cost
        horizon = arrivals[-1][0] + 1.0
        gps.advance(horizon)
        total_served = 0.0
        for flow, total in arrived.items():
            served = gps.service(flow)
            assert -1e-9 <= served <= total + 1e-6
            total_served += served
        assert total_served <= capacity * horizon + 1e-6

    @settings(max_examples=40, deadline=None)
    @given(costs=st.lists(st.floats(min_value=0.1, max_value=10.0),
                          min_size=2, max_size=10))
    def test_equal_backlogged_flows_get_equal_service(self, costs):
        gps = GPSReference(5.0)
        for i, cost in enumerate(costs):
            gps.arrive(f"F{i}", cost + 100.0, now=0.0)  # all stay backlogged
        gps.advance(3.0)
        services = [gps.service(f"F{i}") for i in range(len(costs))]
        assert max(services) - min(services) < 1e-6


class TestEstimatorProperties:
    @settings(max_examples=50, deadline=None)
    @given(observations=cost_lists)
    def test_pessimistic_is_decayed_maximum(self, observations):
        """The pessimistic estimate equals the maximum over all past
        observations of ``alpha^age * cost`` -- the exact closed form of
        Figure 7's update rule."""
        alpha = 0.9
        pess = PessimisticEstimator(alpha=alpha, initial_estimate=1.0)
        r = make_request("T", 1.0, api="G")
        for cost in observations:
            pess.observe(r, cost)
        n = len(observations)
        expected = max(
            alpha ** (n - 1 - i) * cost for i, cost in enumerate(observations)
        )
        assert pess.estimate(r) == pytest.approx(expected, rel=1e-9)

    def test_pessimistic_exceeds_ema_for_bimodal_tenants(self):
        """For the unpredictable tenants that matter (occasional huge
        requests among cheap ones), pessimism vastly exceeds the EMA --
        that gap is what isolates them under 2DFQ^E."""
        pess = PessimisticEstimator(alpha=0.99, initial_estimate=1.0)
        ema = EMAEstimator(alpha=0.99, initial_estimate=1.0)
        r = make_request("T10", 1.0, api="G")
        for i in range(100):
            cost = 1.0e6 if i % 20 == 10 else 1.0e3
            pess.observe(r, cost)
            ema.observe(r, cost)
        assert pess.estimate(r) > 10 * ema.estimate(r)

    @settings(max_examples=50, deadline=None)
    @given(observations=cost_lists)
    def test_pessimistic_bounded_by_running_max(self, observations):
        pess = PessimisticEstimator(alpha=0.9)
        r = make_request("T", 1.0, api="G")
        running_max = 0.0
        for cost in observations:
            running_max = max(running_max, cost)
            pess.observe(r, cost)
            estimate = pess.estimate(r)
            assert estimate <= running_max + 1e-9
            assert estimate >= cost * 0.9 - 1e-9  # never decays below alpha*latest

    @settings(max_examples=50, deadline=None)
    @given(observations=cost_lists)
    def test_ema_stays_within_observed_hull(self, observations):
        ema = EMAEstimator(alpha=0.5)
        r = make_request("T", 1.0, api="G")
        for cost in observations:
            ema.observe(r, cost)
        low, high = min(observations), max(observations)
        assert low - 1e-9 <= ema.estimate(r) <= high + 1e-9


class TestGiniProperties:
    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(st.floats(min_value=0.0, max_value=1e6),
                           min_size=1, max_size=50))
    def test_range_and_translation(self, values):
        g = gini_index(values)
        assert 0.0 <= g <= 1.0

    @settings(max_examples=50, deadline=None)
    @given(value=st.floats(min_value=0.1, max_value=100.0),
           n=st.integers(min_value=1, max_value=30))
    def test_equal_values_are_perfectly_fair(self, value, n):
        assert gini_index([value] * n) == pytest.approx(0.0, abs=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(st.floats(min_value=0.0, max_value=1e3,
                                     allow_subnormal=False),
                           min_size=2, max_size=30),
           scale=st.floats(min_value=0.01, max_value=100.0))
    def test_scale_invariance(self, values, scale):
        # Subnormals are excluded: v * scale can underflow to 0.0 there,
        # which genuinely breaks scale invariance in floating point.
        if sum(values) <= 0:
            return
        a = gini_index(values)
        b = gini_index([v * scale for v in values])
        assert a == pytest.approx(b, abs=1e-9)

    def test_extreme_concentration(self):
        # One tenant hoarding all service approaches (n-1)/n.
        g = gini_index([0.0] * 9 + [100.0])
        assert g == pytest.approx(0.9, abs=1e-9)


class TestRNGProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31),
           key=st.text(min_size=1, max_size=10))
    def test_determinism(self, seed, key):
        a = make_rng(seed, key)
        b = make_rng(seed, key)
        assert a.random() == b.random()

    def test_stream_independence(self):
        a = make_rng(7, "tenant", "T1")
        b = make_rng(7, "tenant", "T2")
        assert a.random() != b.random()

    def test_stable_hash_is_process_stable(self):
        # Known CRC32 value: must never change across runs/versions.
        assert stable_hash("tenant", "T1") == stable_hash("tenant", "T1")
        assert stable_hash("a") != stable_hash("b")
