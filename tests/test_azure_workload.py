"""Validation of the Azure-like workload model against the paper's
published statistics (Figures 2, 3, 4; §3)."""

import numpy as np
import pytest

from repro.simulator.rng import make_rng
from repro.workloads.azure import (
    API_NAMES,
    NAMED_TENANT_IDS,
    api_population_distribution,
    backlogged_variant,
    named_tenant,
    named_tenants,
    random_tenant,
    random_tenants,
)
from repro.workloads.arrivals import Backlogged, OnOffArrivals
from repro.metrics.summary import coefficient_of_variation, cost_summary


@pytest.fixture
def rng():
    return make_rng(11, "azure-tests")


class TestAPIPopulation:
    def test_ten_apis(self):
        assert len(API_NAMES) == 10
        for api in API_NAMES:
            assert api_population_distribution(api) is not None

    def test_aggregate_spans_four_decades(self, rng):
        """§3.1: "request costs span four orders of magnitude"."""
        samples = np.concatenate(
            [api_population_distribution(a).sample_many(rng, 2000) for a in API_NAMES]
        )
        spread = np.log10(np.percentile(samples, 99.9) / np.percentile(samples, 0.1))
        assert spread >= 3.5

    def test_api_a_consistently_cheap(self, rng):
        """Figure 2a: API A is tight and cheap."""
        summary = cost_summary(api_population_distribution("A").sample_many(rng, 4000))
        assert summary.p99 < 2000
        assert summary.decades_of_spread() < 1.0

    def test_api_g_bimodal(self, rng):
        """Figure 2a: API G usually cheap, occasionally very expensive."""
        samples = api_population_distribution("G").sample_many(rng, 8000)
        assert np.median(samples) < 5e3
        assert np.percentile(samples, 99.5) > 1e5

    def test_api_k_varies_widely(self, rng):
        summary = cost_summary(api_population_distribution("K").sample_many(rng, 4000))
        assert summary.decades_of_spread() > 2.5


class TestNamedTenants:
    def test_all_twelve_build(self):
        specs = named_tenants()
        assert [s.tenant_id for s in specs] == list(NAMED_TENANT_IDS)

    def test_unknown_tenant(self):
        with pytest.raises(KeyError):
            named_tenant("T99")

    def test_t1_small_and_predictable(self, rng):
        """§6.1.2: T1's requests are 'between 250 and 1000 in size'."""
        spec = named_tenant("T1")
        sampler = spec.request_sampler(rng)
        costs = np.array([sampler()[1] for _ in range(2000)])
        assert costs.min() >= 250.0
        assert costs.max() <= 1000.0
        assert coefficient_of_variation(costs) < 0.5

    def test_t11_large_and_predictable(self, rng):
        """§3.1: T11 makes large requests with little variation."""
        spec = named_tenant("T11")
        sampler = spec.request_sampler(rng)
        costs = np.array([sampler()[1] for _ in range(2000)])
        assert np.median(costs) > 1e5
        assert coefficient_of_variation(costs) < 0.5

    def test_t9_mixed_small_and_large(self, rng):
        """§3.1: T9 mixes small and large with a lot of variation."""
        spec = named_tenant("T9")
        sampler = spec.request_sampler(rng)
        costs = np.array([sampler()[1] for _ in range(3000)])
        assert (costs < 1e3).any()
        assert (costs > 1e5).any()
        assert coefficient_of_variation(costs) > 1.0

    def test_t10_spans_three_decades_with_bursts(self, rng):
        """§3.2 / Figure 4c: unstable tenant; costs span > 3 decades."""
        spec = named_tenant("T10")
        assert isinstance(spec.arrivals, OnOffArrivals)
        sampler = spec.request_sampler(rng)
        costs = np.array([sampler()[1] for _ in range(5000)])
        spread = np.log10(np.percentile(costs, 99.5) / np.percentile(costs, 0.5))
        assert spread > 3.0

    def test_t3_uses_four_apis(self, rng):
        """Figure 4b: T3 spreads over APIs B, H, J, C."""
        spec = named_tenant("T3")
        assert set(spec.api_costs) == {"B", "H", "J", "C"}

    def test_backlogged_variant_preserves_costs(self):
        spec = named_tenant("T1")
        closed = backlogged_variant(spec, window=6)
        assert isinstance(closed.arrivals, Backlogged)
        assert closed.arrivals.window == 6
        assert closed.api_costs is spec.api_costs


class TestRandomTenants:
    def test_deterministic_generation(self, rng):
        a = random_tenant(3, seed=9)
        b = random_tenant(3, seed=9)
        assert set(a.api_costs) == set(b.api_costs)
        sampler_a = a.request_sampler(make_rng(1, "x"))
        sampler_b = b.request_sampler(make_rng(1, "x"))
        assert [sampler_a() for _ in range(20)] == [sampler_b() for _ in range(20)]

    def test_seed_changes_population(self):
        a = random_tenant(3, seed=1)
        b = random_tenant(3, seed=2)
        assert (
            set(a.api_costs) != set(b.api_costs)
            or a.arrivals != b.arrivals
        )

    def test_population_size_and_ids(self):
        specs = random_tenants(25, seed=0)
        assert len(specs) == 25
        assert specs[0].tenant_id == "R0"
        assert specs[24].tenant_id == "R24"

    def test_figure3_predictable_and_unpredictable_mix(self):
        """Figure 3: each API has low-CoV and high-CoV tenants; the
        population must contain both classes."""
        rng = make_rng(5, "fig3")
        covs = []
        for spec in random_tenants(60, seed=4):
            sampler = spec.request_sampler(rng)
            costs = np.array([sampler()[1] for _ in range(300)])
            covs.append(coefficient_of_variation(costs))
        covs = np.array(covs)
        assert (covs < 0.5).sum() >= 10, "no predictable tenants"
        assert (covs > 1.0).sum() >= 5, "no unpredictable tenants"
