"""Property-based tests on scheduler invariants (hypothesis).

The key invariants from the paper:

* **Theorem 1 bound**: a tenant never falls behind its GPS share by more
  than ``N * Lmax`` (we check the scheduler-side analogue on dispatched
  work for backlogged tenants);
* **work conservation**: no thread idles while requests are queued;
* **per-tenant FIFO**: requests of one tenant dispatch in arrival order;
* **conservation of requests**: every enqueued request is dispatched
  exactly once and bookkeeping counters balance.
"""

from __future__ import annotations

import heapq

from hypothesis import given, settings, strategies as st

from repro.core import make_scheduler
from repro.core.request import Request

FAIR_SCHEDULERS = ["wfq", "wf2q", "msf2q", "sfq", "wf2q+", "2dfq", "drr"]
ALL_SCHEDULERS = FAIR_SCHEDULERS + ["fifo", "round-robin", "2dfq-e", "wfq-e"]

tenant_ids = st.sampled_from(["A", "B", "C", "D"])
costs = st.floats(min_value=0.1, max_value=100.0, allow_nan=False)


@st.composite
def workloads(draw, max_requests: int = 30):
    """A random batch of (tenant, cost) arrivals."""
    n = draw(st.integers(min_value=1, max_value=max_requests))
    return [(draw(tenant_ids), draw(costs)) for _ in range(n)]


def drive(scheduler, batch, num_threads):
    """Run a batch to completion on simulated unit-rate threads,
    returning the dispatch order."""
    for tenant, cost in batch:
        scheduler.enqueue(Request(tenant_id=tenant, cost=cost), 0.0)
    free = [(0.0, i) for i in range(num_threads)]
    heapq.heapify(free)
    completions: list = []
    order = []
    while scheduler.backlog > 0:
        now, thread = heapq.heappop(free)
        while completions and completions[0][0] <= now:
            end, _, done = heapq.heappop(completions)
            scheduler.complete(done, done.cost, end)
        request = scheduler.dequeue(thread, now)
        assert request is not None, "work conservation violated"
        order.append(request)
        end = now + request.cost
        heapq.heappush(completions, (end, request.seqno, request))
        heapq.heappush(free, (end, thread))
    while completions:
        end, _, done = heapq.heappop(completions)
        scheduler.complete(done, done.cost, end)
    return order


@settings(max_examples=30, deadline=None)
@given(name=st.sampled_from(ALL_SCHEDULERS), batch=workloads(),
       num_threads=st.integers(min_value=1, max_value=4))
def test_every_request_dispatched_exactly_once(name, batch, num_threads):
    scheduler = make_scheduler(name, num_threads=num_threads)
    order = drive(scheduler, batch, num_threads)
    assert len(order) == len(batch)
    assert len({r.seqno for r in order}) == len(batch)
    assert scheduler.backlog == 0
    assert scheduler.completed_count == len(batch)


@settings(max_examples=30, deadline=None)
@given(name=st.sampled_from(ALL_SCHEDULERS), batch=workloads(),
       num_threads=st.integers(min_value=1, max_value=4))
def test_per_tenant_fifo_order(name, batch, num_threads):
    scheduler = make_scheduler(name, num_threads=num_threads)
    order = drive(scheduler, batch, num_threads)
    per_tenant_seqnos: dict = {}
    for request in order:
        seqnos = per_tenant_seqnos.setdefault(request.tenant_id, [])
        seqnos.append(request.seqno)
    for tenant, seqnos in per_tenant_seqnos.items():
        assert seqnos == sorted(seqnos), f"{tenant} served out of order"


@settings(max_examples=30, deadline=None)
@given(name=st.sampled_from(FAIR_SCHEDULERS), batch=workloads())
def test_tenant_state_consistency_after_drain(name, batch):
    scheduler = make_scheduler(name, num_threads=2)
    drive(scheduler, batch, 2)
    for state in scheduler.tenants().values():
        assert not state.backlogged
        assert state.running == 0
        assert not state.active


@settings(max_examples=20, deadline=None)
@given(
    num_threads=st.integers(min_value=1, max_value=8),
    small_cost=st.floats(min_value=0.1, max_value=2.0),
    large_cost=st.floats(min_value=10.0, max_value=200.0),
)
def test_theorem1_lag_bound_2dfq(num_threads, small_cost, large_cost):
    """Theorem 1: W_GPS - W_2DFQ <= N * Lmax for backlogged tenants.

    With two equal-weight backlogged tenants, each one's GPS share over
    [0, t] is t * capacity / 2; verify the dispatched-work shortfall
    never exceeds N * Lmax at any dispatch instant.
    """
    scheduler = make_scheduler("2dfq", num_threads=num_threads)
    costs = {"small": small_cost, "large": large_cost}
    lmax = max(costs.values())
    capacity = float(num_threads)
    horizon = 40.0 * lmax / capacity

    served = {"small": 0.0, "large": 0.0}
    queued = {
        "small": [Request(tenant_id="small", cost=small_cost) for _ in range(2)],
        "large": [Request(tenant_id="large", cost=large_cost) for _ in range(2)],
    }
    for tenant in ("small", "large"):
        for request in queued[tenant]:
            scheduler.enqueue(request, 0.0)
    free = [(0.0, i) for i in range(num_threads)]
    heapq.heapify(free)
    completions: list = []
    while free:
        now, thread = heapq.heappop(free)
        if now >= horizon:
            continue
        while completions and completions[0][0] <= now:
            end, _, done = heapq.heappop(completions)
            scheduler.complete(done, done.cost, end)
        request = scheduler.dequeue(thread, now)
        # Check the bound at this instant for both tenants.
        for tenant, cost in costs.items():
            gps_share = now * capacity / 2.0
            shortfall = gps_share - served[tenant]
            assert shortfall <= num_threads * lmax + cost + 1e-6, (
                f"{tenant} fell behind by {shortfall}"
            )
        served[request.tenant_id] += request.cost
        replacement = Request(tenant_id=request.tenant_id, cost=request.cost)
        scheduler.enqueue(replacement, now)
        end = now + request.cost
        heapq.heappush(completions, (end, request.seqno, request))
        heapq.heappush(free, (end, thread))
