"""Per-rule tests for repro.analysis, driven by seeded fixture trees.

Each fixture directory under ``tests/analysis_fixtures/`` contains a
miniature package with deliberate violations of exactly one rule (plus
nearby compliant code the rule must *not* flag); the tests pin the
expected ``(code, filename, line)`` triples so a rule that drifts --
firing on the wrong node, or going silent -- fails loudly.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from repro.analysis import Analyzer

FIXTURES = os.path.join(os.path.dirname(__file__), "analysis_fixtures")


def findings_in(
    *subdirs: str, code: Optional[str] = None
) -> List[Tuple[str, str, int]]:
    """Sorted (code, filename, line) triples from analyzing fixtures."""
    result = Analyzer().run([os.path.join(FIXTURES, d) for d in subdirs])
    return sorted(
        (f.code, os.path.basename(f.path), f.line)
        for f in result.findings
        if code is None or f.code == code
    )


def test_wallclock_rule_flags_every_clock_flavour() -> None:
    assert findings_in("wallclock") == [
        ("RPR001", "uses_clock.py", 9),   # time.time()
        ("RPR001", "uses_clock.py", 13),  # aliased perf_counter
        ("RPR001", "uses_clock.py", 17),  # from-imported datetime.now
        ("RPR001", "uses_clock.py", 21),  # date.today
    ]


def test_unseeded_rng_rule_and_carveout() -> None:
    # simulator/rng.py constructs generators and must stay clean; every
    # finding lands in bad_random.py.
    assert findings_in("rng") == [
        ("RPR002", "bad_random.py", 3),   # import random
        ("RPR002", "bad_random.py", 4),   # from random import
        ("RPR002", "bad_random.py", 10),  # np.random.random()
        ("RPR002", "bad_random.py", 14),  # np.random.shuffle()
        ("RPR002", "bad_random.py", 18),  # default_rng outside carve-out
    ]


def test_float_equality_rule_is_scoped_to_core_packages() -> None:
    # outside.py holds identical comparisons outside a `core` package
    # and must not appear.
    assert findings_in("floateq") == [
        ("RPR010", "tags.py", 5),   # tag == tag
        ("RPR010", "tags.py", 9),   # x != 0.0
        ("RPR010", "tags.py", 13),  # division result ==
    ]


def test_frozen_request_field_rule() -> None:
    assert findings_in("frozenfield") == [
        ("RPR011", "mutate.py", 5),   # request.cost =
        ("RPR011", "mutate.py", 9),   # req.seqno +=
        ("RPR011", "mutate.py", 13),  # <x>.queue[0].tenant_id =
        ("RPR011", "mutate.py", 17),  # annotated assign to .api
    ]


def test_unordered_iteration_rule() -> None:
    assert findings_in("setiter") == [
        ("RPR012", "iterate.py", 5),   # for ... in {literal}
        ("RPR012", "iterate.py", 10),  # comprehension over set()
        ("RPR012", "iterate.py", 14),  # for ... in frozenset()
    ]


def test_scheduler_surface_rule() -> None:
    assert findings_in("conformance") == [
        ("RPR020", "bad.py", 6),      # NoDequeueScheduler: abstract dequeue
        ("RPR020", "bad.py", 13),     # StubCancelScheduler: stub cancel
        ("RPR020", "registry.py", 6),  # GhostScheduler unresolved
    ]


def test_scheduler_surface_messages_name_the_missing_method() -> None:
    result = Analyzer().run([os.path.join(FIXTURES, "conformance")])
    by_line = {
        (os.path.basename(f.path), f.line): f.message for f in result.findings
    }
    assert "`dequeue`" in by_line[("bad.py", 6)]
    assert "`cancel`" in by_line[("bad.py", 13)]
    assert "GhostScheduler" in by_line[("registry.py", 6)]


def test_tracer_pairing_rule() -> None:
    # Only SilentScheduler.complete drops its event; the root class, the
    # super()-deferring and _trace-referencing overrides, and the class
    # outside the framework are all compliant.
    assert findings_in("tracer") == [
        ("RPR021", "vt.py", 25),
    ]


def test_index_surface_rule() -> None:
    # The root, both compliant pairings (own and inherited
    # _select_indexed, dequeue+dequeue_batch), and the class outside the
    # framework are silent; only the two half-surfaces fire.
    assert findings_in("indexsurface") == [
        ("RPR022", "vt.py", 46),  # _index_spec without _select_indexed
        ("RPR022", "vt.py", 53),  # dequeue without dequeue_batch
    ]


def test_index_surface_messages_name_the_missing_half() -> None:
    result = Analyzer().run([os.path.join(FIXTURES, "indexsurface")])
    by_line = {
        (os.path.basename(f.path), f.line): f.message for f in result.findings
    }
    assert "`_select_indexed`" in by_line[("vt.py", 46)]
    assert "`dequeue_batch`" in by_line[("vt.py", 53)]


def test_runtime_assert_rule() -> None:
    assert findings_in("purity") == [
        ("RPR030", "asserts.py", 5),
    ]


def test_fixture_findings_are_disjoint_per_rule() -> None:
    # Each fixture tree violates exactly one rule: analyzing them all at
    # once must produce the union, with no cross-fixture bleed (e.g. the
    # conformance mini-schedulers must not trip RPR021).
    all_at_once = findings_in(
        "wallclock",
        "rng",
        "floateq",
        "frozenfield",
        "setiter",
        "conformance",
        "tracer",
        "indexsurface",
        "purity",
    )
    assert sorted({code for code, _, _ in all_at_once}) == [
        "RPR001",
        "RPR002",
        "RPR010",
        "RPR011",
        "RPR012",
        "RPR020",
        "RPR021",
        "RPR022",
        "RPR030",
    ]
    assert len(all_at_once) == 4 + 5 + 3 + 4 + 3 + 3 + 1 + 2 + 1
