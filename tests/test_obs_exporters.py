"""Exporter and trace-session tests: JSONL, Chrome trace, manifest."""

import json

import pytest

from repro.obs import (
    TraceEvent,
    TraceSession,
    Tracer,
    build_manifest,
    chrome_trace_events,
    current_session,
    trace_session,
    write_chrome_trace,
    write_events_jsonl,
    write_manifest,
)

VALID_PHASES = {"M", "X", "C", "i"}


def _dispatch_log():
    return [
        {"thread_id": 0, "tenant_id": "A", "api": "op", "start": 0.0, "end": 1.0},
        {"thread_id": 1, "tenant_id": "B", "api": "op", "start": 0.0, "end": 4.0},
        {"thread_id": 0, "tenant_id": "A", "api": "op", "start": 1.0, "end": 2.0},
    ]


def _events():
    return [
        TraceEvent("dispatch", 0.0, 0.0, "A", {"backlog": 2}),
        TraceEvent("dispatch", 1.0, 1.0, "A", {"backlog": 1}),
    ]


def _exceptional_events():
    return [
        TraceEvent(
            "cancel", 1.5, 2.0, "A", {"seqno": 7, "api": "op", "was_running": False}
        ),
        TraceEvent("fault", 2.0, None, None, {"fault": "worker_crash", "worker": 1}),
        TraceEvent("invariant", 2.5, 3.0, "B", {"code": "vt-monotonic"}),
        TraceEvent("audit", 3.0, None, "B", {"monitor": "bursty", "tripped": True}),
    ]


class TestEventsJsonl:
    def test_round_trips(self, tmp_path):
        path = write_events_jsonl(_events(), tmp_path / "events.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "dispatch"
        assert first["tenant"] == "A"

    def test_accepts_plain_dicts(self, tmp_path):
        path = write_events_jsonl([{"kind": "x"}], tmp_path / "e.jsonl")
        assert json.loads(path.read_text()) == {"kind": "x"}


class TestChromeTrace:
    def test_schema(self, tmp_path):
        path = write_chrome_trace(
            _dispatch_log(),
            tmp_path / "trace.json",
            trace_events=_events(),
            process_name="test-run",
        )
        payload = json.loads(path.read_text())
        assert set(payload) >= {"traceEvents", "displayTimeUnit"}
        events = payload["traceEvents"]
        assert isinstance(events, list) and events
        for event in events:
            assert event["ph"] in VALID_PHASES
            assert event["pid"] == 1
            if event["ph"] == "X":
                assert isinstance(event["ts"], float)
                assert event["dur"] >= 0.0

    def test_slices_and_metadata(self):
        events = chrome_trace_events(_dispatch_log(), process_name="p")
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 3
        # Timestamps are microseconds.
        assert slices[1]["dur"] == pytest.approx(4.0e6)
        names = {
            e["name"]: e["args"] for e in events if e["ph"] == "M"
        }
        assert names["process_name"] == {"name": "p"}
        assert "thread_name" in names
        # One timeline row per seen worker thread.
        tids = {e["tid"] for e in slices}
        assert tids == {0, 1}

    def test_counter_tracks_from_trace_events(self):
        events = chrome_trace_events(_dispatch_log(), trace_events=_events())
        counters = [e for e in events if e["ph"] == "C"]
        assert {e["name"] for e in counters} == {"virtual_time", "backlog"}

    def test_instant_event_schema(self):
        """cancel/fault/invariant/audit render as tenant-colored
        process-scoped instant events carrying the full payload."""
        events = chrome_trace_events(
            _dispatch_log(), trace_events=_events() + _exceptional_events()
        )
        instants = [e for e in events if e["ph"] == "i"]
        assert [e["name"] for e in instants] == [
            "cancel",
            "fault:worker_crash",
            "invariant:vt-monotonic",
            "audit:bursty",
        ]
        for instant in instants:
            assert instant["s"] == "p"
            assert instant["pid"] == 1
            assert isinstance(instant["ts"], float)
            assert instant["cat"] in {"cancel", "fault", "invariant", "audit"}
            assert isinstance(instant["cname"], str) and instant["cname"]
            assert "kind" not in instant["args"] and "t" not in instant["args"]
        cancel, fault, inv, audit = instants
        assert cancel["args"]["seqno"] == 7
        assert fault["args"]["fault"] == "worker_crash"
        assert inv["args"]["code"] == "vt-monotonic"
        assert audit["args"]["monitor"] == "bursty"
        # Tenant coloring is deterministic: same tenant, same color;
        # tenantless events get the neutral color.
        assert inv["cname"] == audit["cname"]
        assert fault["cname"] == "generic_work"

    def test_instant_events_skipped_without_trace_events(self):
        events = chrome_trace_events(_dispatch_log())
        assert not [e for e in events if e["ph"] == "i"]

    def test_duck_types_objects_with_label(self):
        class Slot:
            thread_id = 0
            start = 0.0
            end = 2.0
            tenant_id = "A"
            label = "a1"

        (slice_,) = [
            e for e in chrome_trace_events([Slot()]) if e["ph"] == "X"
        ]
        assert slice_["name"] == "a1"


class TestManifest:
    def test_required_fields(self, tmp_path):
        path = write_manifest(
            tmp_path / "manifest.json",
            name="run",
            seed=7,
            config={"duration": 2.0},
            scheduler={"name": "2dfq"},
            counters={"scheduler.dispatches": 3},
        )
        manifest = json.loads(path.read_text())
        assert manifest["name"] == "run"
        assert manifest["seed"] == 7
        assert manifest["config"]["duration"] == 2.0
        assert manifest["scheduler"]["name"] == "2dfq"
        assert manifest["counters"]["scheduler.dispatches"] == 3
        assert "python" in manifest["versions"]
        assert "machine" in manifest["platform"]
        # In this repo the git SHA resolves; outside one it may be None.
        assert "git_sha" in manifest

    def test_non_jsonable_values_fall_back_to_repr(self, tmp_path):
        path = write_manifest(
            tmp_path / "m.json", name="r", config={"obj": object()}
        )
        manifest = json.loads(path.read_text())
        assert "object" in manifest["config"]["obj"]

    def test_build_manifest_defaults(self):
        manifest = build_manifest(name="x")
        assert manifest["config"] == {}
        assert manifest["scheduler"] == {}
        assert "counters" not in manifest

    def test_provenance_cached_one_subprocess_per_process(self, monkeypatch):
        """Two manifest builds spawn exactly one git subprocess: the SHA
        and package versions are memoized per process."""
        from repro.obs import exporters

        calls = []
        real_run = exporters.subprocess.run

        def counting_run(*args, **kwargs):
            calls.append(args)
            return real_run(*args, **kwargs)

        monkeypatch.setattr(exporters.subprocess, "run", counting_run)
        exporters._git_sha.cache_clear()
        exporters._cached_package_versions.cache_clear()
        first = build_manifest(name="a")
        second = build_manifest(name="b")
        assert len(calls) == 1
        assert first["git_sha"] == second["git_sha"]
        assert first["versions"] == second["versions"]

    def test_cached_versions_are_copies(self):
        first = build_manifest(name="a")
        first["versions"]["python"] = "mutated"
        assert build_manifest(name="b")["versions"]["python"] != "mutated"


class TestTraceSession:
    def test_export_run_writes_three_artifacts(self, tmp_path):
        session = TraceSession(tmp_path)
        tracer = session.tracer("demo run/1")
        tracer.dispatch(
            0.0, 0.0, "A", seqno=0, api="x", thread=0, estimate=1.0,
            start_tag_after=1.0, backlog=1,
        )
        run_dir = session.export_run(
            tracer, dispatch_log=_dispatch_log(), seed=3, config={"d": 1}
        )
        for artifact in ("events.jsonl", "chrome_trace.json", "manifest.json"):
            assert (run_dir / artifact).exists()
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["counters"]["trace.events"] == 1
        assert manifest["counters"]["trace.dropped_events"] == 0
        assert manifest["counters"]["scheduler.dispatches"] == 1
        assert session.runs == [run_dir.name]

    def test_run_labels_are_slugged_and_unique(self, tmp_path):
        session = TraceSession(tmp_path)
        first = session.export_run(session.tracer("fig (a)"))
        second = session.export_run(session.tracer("fig (a)"))
        assert first != second
        assert " " not in first.name and "(" not in first.name

    def test_session_tracers_cap_events(self, tmp_path):
        session = TraceSession(tmp_path, max_events=1)
        tracer = session.tracer("t")
        tracer.vt_update(0.0, 0.0, None, reason="a")
        tracer.vt_update(1.0, 1.0, None, reason="b")
        assert len(tracer) == 1
        assert tracer.dropped_events == 1

    def test_context_manager_sets_and_restores(self, tmp_path):
        assert current_session() is None
        with trace_session(tmp_path) as session:
            assert current_session() is session
            with trace_session(tmp_path / "inner") as inner:
                assert current_session() is inner
            assert current_session() is session
        assert current_session() is None
