"""Property test: crash + failover conserves requests on every scheduler.

Hypothesis drives randomized crash plans (any subset of servers short of
the whole fleet, random crash/restart times, any router, hedged or not)
against every registered scheduler with ``REPRO_VALIDATE=1`` semantics:
each server's scheduler runs inside the invariant watchdog and a
:class:`FleetConservationLedger` audits the cluster in strict mode, so
any lost request, double completion, or double charge raises
``InvariantViolation`` rather than silently passing.
"""

from __future__ import annotations

import os
from unittest import mock

from hypothesis import given, settings, strategies as st

from repro.core.registry import make_scheduler, scheduler_names
from repro.faults import FaultPlan, ServerCrash
from repro.fleet import FailoverPolicy, Fleet, FleetInjector, router_names
from repro.simulator.clock import Simulation
from repro.simulator.rng import make_rng
from repro.simulator.server import ThreadPoolServer
from repro.simulator.sources import BackloggedSource
from repro.validate import (
    FleetConservationLedger,
    ValidatingScheduler,
    env_validate,
)

ALL_SCHEDULERS = scheduler_names()
HORIZON = 40.0


@st.composite
def crash_scenarios(draw):
    num_servers = draw(st.integers(min_value=2, max_value=4))
    # Crash any proper subset so at least one survivor can absorb the
    # drained work.
    num_crashes = draw(st.integers(min_value=1, max_value=num_servers - 1))
    victims = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_servers - 1),
            min_size=num_crashes,
            max_size=num_crashes,
            unique=True,
        )
    )
    crashes = []
    for server in victims:
        at = draw(st.floats(min_value=0.05, max_value=1.5))
        restart = draw(
            st.one_of(
                st.none(),
                st.floats(min_value=at + 0.1, max_value=3.0),
            )
        )
        crashes.append(ServerCrash(server=server, at=at, restart_at=restart))
    return {
        "num_servers": num_servers,
        "plan": FaultPlan(server_crashes=tuple(crashes), seed=draw(st.integers(0, 99))),
        "router": draw(st.sampled_from(router_names())),
        "hedge": draw(st.booleans()),
        "seed": draw(st.integers(min_value=0, max_value=99)),
    }


@settings(max_examples=25, deadline=None)
@given(name=st.sampled_from(ALL_SCHEDULERS), scenario=crash_scenarios())
def test_crash_failover_conserves_requests(name, scenario):
    with mock.patch.dict(os.environ, {"REPRO_VALIDATE": "1"}):
        assert env_validate()
        sim = Simulation()
        servers = []
        for _ in range(scenario["num_servers"]):
            kwargs = {"initial_estimate": 10.0} if name.endswith("-e") else {}
            sched = ValidatingScheduler(
                make_scheduler(name, num_threads=2, **kwargs)
            )
            servers.append(ThreadPoolServer(sim, sched, 2, rate=100.0))
        fleet = Fleet(
            sim,
            servers,
            router=scenario["router"],
            failover=FailoverPolicy(
                max_retries=2, backoff=0.01, hedge=scenario["hedge"]
            ),
            health_interval=0.05,
            seed=scenario["seed"],
        )
        ledger = FleetConservationLedger(fleet, strict=True)
        for tenant in ("a", "b", "c"):
            rng = make_rng(scenario["seed"], "conservation", tenant)
            source = BackloggedSource(
                fleet,
                tenant,
                lambda rng=rng: ("A", float(rng.uniform(1.0, 20.0))),
                window=3,
                limit=15,
            )
            source.start()
        FleetInjector(fleet, scenario["plan"]).install()
        # Strict mode: any double completion / double charge / lost
        # request raises InvariantViolation during or after the run.
        sim.run(until=HORIZON)
        ledger.verify()
        assert ledger.errors == []
        counts = fleet.counts
        pending = fleet.pending_seqnos()
        # Every admitted request reached exactly one terminal outcome or
        # is still accounted for (frozen on an undetected corpse, or
        # awaiting a failover retry) -- never lost, never duplicated.
        assert (
            counts["completed"] + counts["abandoned"] + len(pending)
            == counts["admitted"]
        )
        assert counts["rejected"] + counts["admitted"] == 45
