"""Unit tests for the event heap."""

import pytest

from repro.errors import SimulationError
from repro.simulator.events import EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        fired = []
        q.push(3.0, fired.append, "c")
        q.push(1.0, fired.append, "a")
        q.push(2.0, fired.append, "b")
        while q:
            handle = q.pop()
            handle.fn(*handle.args)
        assert fired == ["a", "b", "c"]

    def test_fifo_among_simultaneous_events(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        second = q.push(1.0, lambda: None)
        first = q.pop()
        assert first.seq < second.seq

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, lambda: None)
        q.push(2.0, lambda: None)
        assert q.peek_time() == 2.0

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()


class TestCancellation:
    def test_cancelled_events_skipped(self):
        q = EventQueue()
        h1 = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.cancel(h1)
        assert len(q) == 1
        assert q.peek_time() == 2.0
        assert q.pop().time == 2.0

    def test_double_cancel_is_idempotent(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        q.cancel(h)
        q.cancel(h)
        assert len(q) == 0

    def test_cancel_frees_references(self):
        q = EventQueue()
        payload = object()
        h = q.push(1.0, lambda x: None, payload)
        q.cancel(h)
        assert h.args == ()
        assert h.fn is None

    def test_len_counts_live_events(self):
        q = EventQueue()
        handles = [q.push(float(i), lambda: None) for i in range(5)]
        q.cancel(handles[2])
        q.cancel(handles[4])
        assert len(q) == 3
        assert bool(q)
