"""Unit tests for the event heap."""

import pytest

from repro.errors import SimulationError
from repro.simulator.events import EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        fired = []
        q.push(3.0, fired.append, "c")
        q.push(1.0, fired.append, "a")
        q.push(2.0, fired.append, "b")
        while q:
            handle = q.pop()
            handle.fn(*handle.args)
        assert fired == ["a", "b", "c"]

    def test_fifo_among_simultaneous_events(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        second = q.push(1.0, lambda: None)
        first = q.pop()
        assert first.seq < second.seq

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, lambda: None)
        q.push(2.0, lambda: None)
        assert q.peek_time() == 2.0

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()


class TestCancellation:
    def test_cancelled_events_skipped(self):
        q = EventQueue()
        h1 = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.cancel(h1)
        assert len(q) == 1
        assert q.peek_time() == 2.0
        assert q.pop().time == 2.0

    def test_double_cancel_is_idempotent(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        q.cancel(h)
        q.cancel(h)
        assert len(q) == 0

    def test_cancel_frees_references(self):
        q = EventQueue()
        payload = object()
        h = q.push(1.0, lambda x: None, payload)
        q.cancel(h)
        assert h.args == ()
        assert h.fn is None

    def test_len_counts_live_events(self):
        q = EventQueue()
        handles = [q.push(float(i), lambda: None) for i in range(5)]
        q.cancel(handles[2])
        q.cancel(handles[4])
        assert len(q) == 3
        assert bool(q)


class TestPurgeHeuristic:
    """Pin the lazy-cancel compaction: dead entries must both exceed the
    threshold and outnumber the live ones before the heap is rebuilt."""

    def test_backlog_tracks_cancelled_entries(self):
        q = EventQueue(purge_threshold=100)
        handles = [q.push(float(i), lambda: None) for i in range(10)]
        assert q.cancelled_backlog == 0
        for h in handles[:4]:
            q.cancel(h)
        assert q.cancelled_backlog == 4
        assert len(q) == 6

    def test_no_purge_below_threshold(self):
        q = EventQueue(purge_threshold=10)
        handles = [q.push(float(i), lambda: None) for i in range(12)]
        # Cancel 10 of 12: backlog (10) > live (2) but not > threshold.
        for h in handles[:10]:
            q.cancel(h)
        assert q.purges == 0
        assert q.cancelled_backlog == 10

    def test_no_purge_while_live_majority(self):
        q = EventQueue(purge_threshold=2)
        handles = [q.push(float(i), lambda: None) for i in range(10)]
        # Cancel 4 of 10: backlog (4) > threshold but not > live (6).
        for h in handles[:4]:
            q.cancel(h)
        assert q.purges == 0

    def test_purge_fires_when_dead_outnumber_live_and_threshold(self):
        q = EventQueue(purge_threshold=2)
        handles = [q.push(float(i), lambda: None) for i in range(7)]
        for h in handles[:3]:
            q.cancel(h)
        assert q.purges == 0  # 3 dead vs 4 live: live still majority
        q.cancel(handles[3])
        assert q.purges == 1  # 4 dead vs 3 live and 4 > threshold
        assert q.cancelled_backlog == 0
        assert len(q) == 3

    def test_pop_order_identical_across_compaction(self):
        """Compaction preserves (time, seq) keys, so the pop sequence
        matches a queue that never compacts."""

        def drive(threshold):
            q = EventQueue(purge_threshold=threshold)
            handles = [
                q.push(float(i % 5), lambda: None) for i in range(50)
            ]
            for i, h in enumerate(handles):
                if i % 3 != 0:
                    q.cancel(h)
            order = []
            while q:
                h = q.pop()
                order.append((h.time, h.seq))
            return q.purges, order

        purges_eager, order_eager = drive(threshold=1)
        purges_lazy, order_lazy = drive(threshold=10_000)
        assert purges_eager > 0
        assert purges_lazy == 0
        assert order_eager == order_lazy

    def test_threshold_validation(self):
        with pytest.raises(SimulationError):
            EventQueue(purge_threshold=0)

    def test_heap_stays_bounded_under_churn(self):
        """Timer churn (push + cancel forever) must not grow the heap:
        the heuristic caps it near 2x live + threshold."""
        q = EventQueue(purge_threshold=8)
        live = [q.push(float(i), lambda: None) for i in range(4)]
        for i in range(1000):
            h = q.push(100.0 + i, lambda: None)
            q.cancel(h)
        assert len(q) == 4
        assert q.cancelled_backlog <= 2 * len(q) + q.purge_threshold + 1
        assert q.purges > 0
        assert sorted(h.time for h in live) == [0.0, 1.0, 2.0, 3.0]
