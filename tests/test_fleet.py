"""The fleet tier: routing, health detection, crash failover, hedging,
admission control, and the figfleet acceptance contrast.

The scenarios drive a real multi-server simulation end to end (shared
``Simulation``, per-server schedulers, closed-loop sources through the
``SubmitTarget`` protocol) rather than poking fleet internals, so they
double as integration tests of the exact-refund ``cancel()`` path across
servers.
"""

from __future__ import annotations

import pytest

from repro.core.registry import make_scheduler
from repro.core.request import Request
from repro.errors import ConfigurationError
from repro.experiments.fleet import (
    PROBE_TENANT,
    fleet_crash_plan,
    run_fleet,
    run_figfleet,
)
from repro.faults import FaultPlan, ServerCrash
from repro.fleet import (
    FailoverPolicy,
    Fleet,
    FleetCollector,
    FleetInjector,
    make_router,
    router_names,
)
from repro.simulator.clock import Simulation
from repro.simulator.rng import make_rng
from repro.simulator.server import ThreadPoolServer
from repro.simulator.sources import BackloggedSource
from repro.validate import FleetConservationLedger


def build_fleet(
    num_servers=4,
    scheduler="2dfq",
    num_threads=2,
    rate=100.0,
    **kwargs,
):
    sim = Simulation()
    servers = [
        ThreadPoolServer(
            sim,
            make_scheduler(scheduler, num_threads=num_threads),
            num_threads,
            rate=rate,
        )
        for _ in range(num_servers)
    ]
    return sim, Fleet(sim, servers, **kwargs)


def backlogged(fleet, tenant, cost=2.0, window=4, limit=None, seed=1):
    rng = make_rng(seed, "costs", tenant)
    source = BackloggedSource(
        fleet,
        tenant,
        lambda: ("A", cost * float(rng.uniform(0.5, 1.5))),
        window=window,
        limit=limit,
    )
    source.start()
    return source


class TestRouters:
    def test_registry(self):
        assert router_names() == [
            "least-backlog",
            "random",
            "round-robin",
            "tenant-hash",
        ]
        with pytest.raises(ConfigurationError, match="unknown router"):
            make_router("zeal")

    def test_round_robin_cycles(self):
        sim, fleet = build_fleet(num_servers=3, router="round-robin")
        request = Request(tenant_id="A", cost=1.0)
        choices = [fleet.router.route(request, [0, 1, 2]) for _ in range(6)]
        assert choices == [0, 1, 2, 0, 1, 2]

    def test_random_is_seeded(self):
        _, fleet_a = build_fleet(router="random", seed=7)
        _, fleet_b = build_fleet(router="random", seed=7)
        request = Request(tenant_id="A", cost=1.0)
        picks_a = [fleet_a.router.route(request, [0, 1, 2, 3]) for _ in range(20)]
        picks_b = [fleet_b.router.route(request, [0, 1, 2, 3]) for _ in range(20)]
        assert picks_a == picks_b
        assert len(set(picks_a)) > 1

    def test_least_backlog_prefers_empty_server(self):
        sim, fleet = build_fleet(num_servers=2, router="least-backlog")
        for _ in range(6):
            fleet.servers[0].submit(Request(tenant_id="bg", cost=50.0))
        fleet.submit(Request(tenant_id="A", cost=1.0))
        assert fleet._owner and set(fleet._live[1])  # went to server 1

    def test_tenant_hash_is_sticky_and_stable_under_crash(self):
        _, fleet = build_fleet(num_servers=4, router="tenant-hash")
        router = fleet.router
        healthy = [0, 1, 2, 3]
        homes = {
            t: router.route(Request(tenant_id=t, cost=1.0), healthy)
            for t in ("a", "b", "c", "d", "e", "f", "g", "h")
        }
        # Sticky: repeated routes agree.
        for t, home in homes.items():
            assert router.route(Request(tenant_id=t, cost=1.0), healthy) == home
        # Consistent: removing one server only moves that server's tenants.
        dead = homes["a"]
        survivors = [i for i in healthy if i != dead]
        for t, home in homes.items():
            moved = router.route(Request(tenant_id=t, cost=1.0), survivors)
            if home != dead:
                assert moved == home, t
            else:
                assert moved in survivors


class TestFleetBasics:
    def test_submit_target_protocol_round_trip(self):
        sim, fleet = build_fleet()
        backlogged(fleet, "a", limit=20)
        backlogged(fleet, "b", limit=20)
        sim.run(until=10.0)
        assert fleet.counts["admitted"] == 40
        assert fleet.counts["completed"] == 40
        assert fleet.counts["rejected"] == 0
        assert not fleet.pending_seqnos()

    def test_service_aggregates_across_servers(self):
        sim, fleet = build_fleet(num_servers=2, router="round-robin")
        backlogged(fleet, "a", limit=10)
        sim.run(until=10.0)
        total = sum(s.completed_cost("a") for s in fleet.servers)
        assert fleet.service_received("a") == pytest.approx(total)
        assert all(s.completed_requests > 0 for s in fleet.servers)

    def test_admission_control_rejects_and_recovers(self):
        sim, fleet = build_fleet(
            num_servers=2,
            admission_limit=1.0,
            reject_retry_delay=0.05,
        )
        backlogged(fleet, "a", cost=20.0, window=16, limit=40)
        sim.run(until=60.0)
        assert fleet.counts["rejected"] > 0
        assert fleet.counts["completed"] > 0
        # Every submission is accounted for: the closed loop is told
        # about rejections (after reject_retry_delay) and moves on.
        assert (
            fleet.counts["completed"] + fleet.counts["rejected"] == 40
        )
        assert not fleet.pending_seqnos()

    def test_rejects_when_no_server_is_healthy(self):
        sim, fleet = build_fleet(num_servers=2, health_interval=0.01)
        fleet.crash_server(0)
        fleet.crash_server(1)
        sim.run(until=0.05)  # both detected
        assert fleet.down == frozenset({0, 1})
        fleet.submit(Request(tenant_id="a", cost=1.0))
        assert fleet.counts["rejected"] == 1
        assert fleet.counts["admitted"] == 0


class TestCrashAndFailover:
    def test_crash_freezes_and_restore_resumes(self):
        # No failover: a crashed server strands its work; restore
        # resumes the frozen in-flight requests from retained progress.
        sim, fleet = build_fleet(num_servers=2, failover=None, router="round-robin")
        backlogged(fleet, "a", cost=10.0, limit=12)
        sim.at(0.05, fleet.crash_server, 0)
        sim.run(until=2.0)
        stuck = len(fleet._live[0])
        assert fleet.servers[0].crashed
        assert stuck > 0
        assert fleet.counts["completed"] < 12
        fleet.restore_server(0)
        sim.run(until=10.0)
        assert fleet.counts["completed"] == 12

    def test_detection_waits_for_probe_window(self):
        sim, fleet = build_fleet(
            num_servers=2,
            health_interval=0.1,
            failure_threshold=2,
        )
        sim.at(0.11, fleet.crash_server, 0)
        sim.run(until=0.25)
        assert fleet.down == frozenset()  # one missed probe, not two
        sim.run(until=0.35)
        assert fleet.down == frozenset({0})
        assert fleet.counts["detections"] == 1

    def test_failover_drains_and_recovers_all_requests(self):
        sim, fleet = build_fleet(
            num_servers=3,
            router="round-robin",
            health_interval=0.02,
        )
        ledger = FleetConservationLedger(fleet)
        backlogged(fleet, "a", cost=5.0, window=6, limit=60)
        backlogged(fleet, "b", cost=5.0, window=6, limit=60)
        sim.at(0.3, fleet.crash_server, 1)
        sim.run(until=30.0)
        assert fleet.counts["failovers"] == 1
        assert fleet.counts["failover_retries"] > 0
        assert fleet.counts["completed"] == 120
        assert fleet.counts["abandoned"] == 0
        ledger.verify()
        assert ledger.errors == []

    def test_recovery_marks_server_up_and_routes_to_it(self):
        sim, fleet = build_fleet(num_servers=2, health_interval=0.02)
        sim.at(0.1, fleet.crash_server, 0)
        sim.at(0.5, fleet.restore_server, 0)
        backlogged(fleet, "a", cost=2.0)
        sim.run(until=1.0)
        assert fleet.counts["recoveries"] == 1
        assert fleet.down == frozenset()

    def test_exhausted_retry_budget_abandons_to_source(self):
        # Both servers die; the drained requests burn their retries
        # against an all-down fleet and are abandoned.
        sim, fleet = build_fleet(
            num_servers=2,
            router="round-robin",
            health_interval=0.02,
            failover=FailoverPolicy(max_retries=1, backoff=0.01),
        )
        abandoned = []
        fleet.on_abandon(abandoned.append)
        backlogged(fleet, "a", cost=50.0, window=4, limit=4)
        sim.at(0.1, fleet.crash_server, 0)
        sim.at(0.1, fleet.crash_server, 1)
        sim.run(until=5.0)
        assert fleet.counts["abandoned"] == 4
        assert len(abandoned) == 4
        assert fleet.counts["completed"] == 0

    def test_refund_is_exact_after_cross_server_reroute(self):
        # A drained request re-routed to a survivor must be charged
        # exactly once: reported usage equals true cost at completion.
        sim, fleet = build_fleet(
            num_servers=2, router="round-robin", health_interval=0.02
        )
        done = []
        fleet.on_complete(done.append)
        backlogged(fleet, "a", cost=30.0, window=2, limit=2)
        sim.at(0.05, fleet.crash_server, 0)
        sim.run(until=10.0)
        assert len(done) == 2
        for request in done:
            assert request.reported_usage == pytest.approx(request.cost)


class TestHedging:
    def test_first_completion_wins_and_loser_is_refunded(self):
        sim, fleet = build_fleet(
            num_servers=2,
            router="round-robin",
            failover=FailoverPolicy(hedge=True),
        )
        done = []
        fleet.on_complete(done.append)
        backlogged(fleet, "a", cost=4.0, window=2, limit=30)
        sim.run(until=20.0)
        assert fleet.counts["hedged"] == 30
        assert fleet.counts["completed"] == 30
        assert len(done) == 30
        # 60 copies routed, 30 logical completions.
        assert fleet.counts["routed"] == 60
        assert not fleet.pending_seqnos()

    def test_hedge_survives_crash_of_either_copy(self):
        sim, fleet = build_fleet(
            num_servers=2,
            router="round-robin",
            health_interval=0.02,
            failover=FailoverPolicy(hedge=True),
        )
        ledger = FleetConservationLedger(fleet)
        backlogged(fleet, "a", cost=5.0, window=4, limit=40)
        sim.at(0.2, fleet.crash_server, 0)
        sim.run(until=30.0)
        assert fleet.counts["completed"] == 40
        ledger.verify()
        assert ledger.errors == []


class TestFigFleet:
    def test_crash_degrades_and_failover_restores(self):
        # The acceptance contrast: with failover the fleet stays within
        # a small factor of healthy throughput and keeps survivor lag
        # bounded; without it, completions collapse.
        duration = 2.0
        plan = fleet_crash_plan(duration)
        common = dict(duration=duration, router="round-robin", validate=True)
        healthy = run_fleet(plan=None, **common)
        crash = run_fleet(plan=plan, failover=None, **common)
        failover = run_fleet(plan=plan, **common)
        n_healthy = healthy.counts["completed"]
        n_crash = crash.counts["completed"]
        n_failover = failover.counts["completed"]
        assert n_crash < 0.75 * n_healthy  # measurable degradation
        assert n_failover > 0.9 * n_crash / 0.75  # recovery
        assert n_failover > n_crash
        # Survivor lag stays bounded under failover: within a small
        # factor of the healthy run's worst lag.
        fair = 16.0 * 1000.0 / 12.0
        worst = {
            name: max(
                run.metrics.max_abs_lag(t) / fair
                for t in run.metrics.tenants()
            )
            for name, run in (
                ("healthy", healthy),
                ("failover", failover),
            )
        }
        assert worst["failover"] < 3.0 * max(worst["healthy"], 0.25)
        assert failover.counts["failover_retries"] > 0

    def test_run_figfleet_shape(self):
        result = run_figfleet(duration=1.0, num_servers=2)
        assert set(result.runs) == {"healthy", "crash", "failover"}
        assert set(result.ablation) == set(router_names())
        rows = result.rows()
        assert len(rows) == 3
        assert all(len(row) == 6 for row in rows)
        assert PROBE_TENANT in result.runs["healthy"].metrics.tenants()
        assert result.worst_survivor_lag("healthy") >= 0.0

    def test_figfleet_needs_two_servers(self):
        with pytest.raises(ValueError, match="at least 2 servers"):
            run_figfleet(duration=1.0, num_servers=1)


class TestFleetCollector:
    def test_gps_rerates_on_detection(self):
        sim, fleet = build_fleet(
            num_servers=2, router="round-robin", health_interval=0.05
        )
        collector = FleetCollector(fleet, sample_interval=0.05)
        backlogged(fleet, "a", cost=2.0)
        sim.at(0.4, fleet.crash_server, 0)
        sim.run(until=1.0)
        metrics = collector.result()
        # Timeline: full capacity, then the post-detection halving.
        assert metrics.capacity_timeline[0] == (0.0, 400.0)
        assert metrics.capacity_timeline[-1][1] == pytest.approx(200.0)
        assert "a" in metrics.tenants()
        series = metrics.service_series("a")
        assert series.actual.size > 0 and series.gps.size > 0

    def test_validation_errors_surface(self):
        sim, fleet = build_fleet(num_servers=2)
        ledger = FleetConservationLedger(fleet, strict=False)
        request = Request(tenant_id="a", cost=1.0)
        fleet.submit(request)
        sim.run(until=1.0)
        # Forge a duplicate completion: the ledger must flag it.
        for fn in fleet._complete_listeners:
            fn(request)
        assert any("completed 2 times" in e for e in ledger.errors)


class TestConfigErrors:
    def test_fleet_rejects_empty_and_cross_sim_servers(self):
        sim = Simulation()
        with pytest.raises(ConfigurationError, match="at least one server"):
            Fleet(sim, [])
        other = Simulation()
        stray = ThreadPoolServer(
            other, make_scheduler("fifo", num_threads=1), 1
        )
        with pytest.raises(ConfigurationError, match="different Simulation"):
            Fleet(sim, [stray])

    def test_failover_policy_validation(self):
        with pytest.raises(ConfigurationError):
            FailoverPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            FailoverPolicy(growth=0.5)

    def test_injector_rejects_unknown_server(self):
        sim, fleet = build_fleet(num_servers=2)
        plan = FaultPlan(server_crashes=(ServerCrash(server=5, at=1.0),))
        injector = FleetInjector(fleet, plan)
        with pytest.raises(ConfigurationError, match="names server 5"):
            injector.install()
