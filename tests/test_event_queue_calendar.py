"""Calendar event queue: differential and unit tests.

:class:`~repro.simulator.events.CalendarEventQueue` must be a drop-in
replacement for the reference binary heap: identical pop order for any
push/cancel/pop sequence (including same-instant FIFO ties), identical
``len``/``peek_time``/``cancelled_backlog`` trajectories, and the same
purge heuristic.  These tests drive both implementations side by side
through seeded long-horizon traces, pin the calendar-specific machinery
(bucket resize, scan rewind, sparse years, compaction), and close the
loop end to end: ``Simulation(event_queue="calendar")`` and a full
``run_single`` must produce results bit-identical to the heap.
"""

import dataclasses

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_single
from repro.simulator.clock import Simulation
from repro.simulator.events import CalendarEventQueue, EventQueue
from repro.simulator.rng import make_rng
from repro.workloads.synthetic import expensive_requests_population


def _noop():
    pass


def run_differential_trace(
    seed, ops=4000, purge_threshold=64, cancel_bias=0.2
):
    """Drive a heap and a calendar queue through one seeded trace of
    interleaved pushes, cancels, peeks, and pops, asserting parity at
    every step.  Returns ``(pop_order, heap, calendar)``.

    Popped handles are marked consumed via ``handle.cancel()`` directly
    (exactly what ``Simulation.run`` does after firing a callback), so a
    later ``queue.cancel`` on them is a no-op -- the contract both
    implementations' live counts rely on.
    """
    rng = make_rng(seed, "eventq-differential", str(purge_threshold))
    heap = EventQueue(purge_threshold=purge_threshold)
    cal = CalendarEventQueue(purge_threshold=purge_threshold)
    pending = {}  # seq -> (heap_handle, calendar_handle)
    now = 0.0
    pop_order = []

    def pop_pair():
        hh, ch = heap.pop(), cal.pop()
        assert (hh.time, hh.seq) == (ch.time, ch.seq)
        hh.cancel()  # mark consumed, as Simulation.run does
        ch.cancel()
        del pending[hh.seq]
        pop_order.append((hh.time, hh.seq))
        return hh.time

    for _ in range(ops):
        r = rng.random()
        if r < 0.55 + cancel_bias * 0.0 or not pending:
            u = rng.random()
            if u < 0.10:
                # Same-instant ties at an integral time (often <= now:
                # exercises the scan-rewind path too).
                t = float(int(now))
            elif u < 0.18:
                # Far-future outlier: sparse-year fallback territory.
                t = now + float(rng.exponential(2_000.0))
            else:
                t = now + float(rng.exponential(5.0))
            hh = heap.push(t, _noop)
            ch = cal.push(t, _noop)
            assert hh.seq == ch.seq
            pending[hh.seq] = (hh, ch)
        elif r < 0.55 + cancel_bias:
            seqs = sorted(pending)
            seq = seqs[int(rng.integers(len(seqs)))]
            hh, ch = pending.pop(seq)
            heap.cancel(hh)
            cal.cancel(ch)
        else:
            assert heap.peek_time() == cal.peek_time()
            if heap:
                now = max(now, pop_pair())
        assert len(heap) == len(cal)
    while heap:
        pop_pair()
    assert not cal
    assert heap.peek_time() is None and cal.peek_time() is None
    return pop_order, heap, cal


class TestDifferential:
    def test_seeded_long_horizon_traces(self):
        """Six seeds of mixed push/cancel/peek/pop traffic: exact
        ``(time, seq)`` pop parity, step-by-step len/peek parity."""
        for seed in range(6):
            pop_order, heap, cal = run_differential_trace(seed)
            assert len(pop_order) > 500
            # Every pop was asserted identical pairwise; the sequence
            # itself is NOT globally time-sorted, because the trace
            # deliberately pushes events earlier than already-popped
            # times to exercise the scan-rewind path.
            assert len({seq for _, seq in pop_order}) == len(pop_order)
            # The trace grows the queue well past the initial geometry,
            # so the calendar must have resized at least once.
            assert cal._nbuckets > 4

    def test_forced_compactions_preserve_order(self):
        """A tiny purge threshold plus cancel-heavy traffic forces both
        queues through repeated compactions; parity must survive."""
        pop_order, heap, cal = run_differential_trace(
            99, ops=3000, purge_threshold=4, cancel_bias=0.38
        )
        assert heap.purges > 0
        assert cal.purges > 0
        assert len(pop_order) > 300

    def test_exact_tie_fifo(self):
        """Same-instant events pop in push (seq) order on both."""
        heap, cal = EventQueue(), CalendarEventQueue()
        for _ in range(10):
            heap.push(7.0, _noop)
            cal.push(7.0, _noop)
        for expected_seq in range(10):
            hh, ch = heap.pop(), cal.pop()
            assert hh.seq == ch.seq == expected_seq
            hh.cancel()
            ch.cancel()


class TestCalendarMechanics:
    def test_rewind_after_peek_far_ahead(self):
        """Peeking a far-future event advances the scan day; a later
        push *earlier* than the frontier must rewind it."""
        q = CalendarEventQueue()
        q.push(5_000.0, _noop)
        assert q.peek_time() == 5_000.0  # scan day is now far ahead
        q.push(2.0, _noop)
        assert q.peek_time() == 2.0
        assert q.pop().time == 2.0
        assert q.pop().time == 5_000.0

    def test_sparse_year_fallback(self):
        """Events further apart than a whole lap of days still pop in
        order (the direct-minimum fallback)."""
        q = CalendarEventQueue()
        times = [0.5, 1_000.0, 50_000.0, 2_000_000.0]
        for t in reversed(times):
            q.push(t, _noop)
        assert [q.pop().time for _ in times] == times

    def test_resize_preserves_order(self):
        """Growing past 6 live events per bucket doubles the bucket
        count and re-derives the width; pop order is untouched."""
        q = CalendarEventQueue()
        rng = make_rng(3, "eventq-resize")
        times = [float(t) for t in rng.exponential(10.0, 400)]
        for t in times:
            q.push(t, _noop)
        assert q._nbuckets > 4
        popped = [q.pop().time for _ in times]
        assert popped == sorted(times)

    def test_resize_drops_cancelled_entries(self):
        q = CalendarEventQueue(purge_threshold=10_000)
        handles = [q.push(float(i), _noop) for i in range(20)]
        for h in handles[::2]:
            q.cancel(h)
        assert q.cancelled_backlog == 10
        for i in range(20, 40):  # trip live > 6 * nbuckets
            q.push(float(i), _noop)
        assert q.cancelled_backlog == 0
        assert len(q) == 30

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            CalendarEventQueue().pop()
        q = CalendarEventQueue()
        h = q.push(1.0, _noop)
        q.cancel(h)
        with pytest.raises(SimulationError):
            q.pop()


class TestCalendarPurgeHeuristic:
    """The calendar queue shares the heap's compaction policy: dead
    entries must both exceed the threshold and outnumber the live."""

    def test_threshold_validation(self):
        with pytest.raises(SimulationError):
            CalendarEventQueue(purge_threshold=0)

    def test_no_purge_below_threshold(self):
        q = CalendarEventQueue(purge_threshold=10)
        handles = [q.push(float(i), _noop) for i in range(12)]
        for h in handles[:10]:
            q.cancel(h)
        assert q.purges == 0
        assert q.cancelled_backlog == 10

    def test_no_purge_while_live_majority(self):
        q = CalendarEventQueue(purge_threshold=2)
        handles = [q.push(float(i), _noop) for i in range(10)]
        for h in handles[:4]:
            q.cancel(h)
        assert q.purges == 0

    def test_purge_fires_when_dead_outnumber_live_and_threshold(self):
        q = CalendarEventQueue(purge_threshold=2)
        handles = [q.push(float(i), _noop) for i in range(7)]
        for h in handles[:3]:
            q.cancel(h)
        assert q.purges == 0  # 3 dead vs 4 live: live still majority
        q.cancel(handles[3])
        assert q.purges == 1  # 4 dead vs 3 live and 4 > threshold
        assert q.cancelled_backlog == 0
        assert len(q) == 3

    def test_buckets_stay_bounded_under_churn(self):
        q = CalendarEventQueue(purge_threshold=8)
        live = [q.push(float(i), _noop) for i in range(4)]
        for i in range(1000):
            h = q.push(100.0 + i, _noop)
            q.cancel(h)
        assert len(q) == 4
        assert q.cancelled_backlog <= 2 * len(q) + q.purge_threshold + 1
        assert q.purges > 0
        assert sorted(h.time for h in live) == [0.0, 1.0, 2.0, 3.0]


class TestSimulationIntegration:
    def test_unknown_event_queue_rejected(self):
        with pytest.raises(SimulationError):
            Simulation(event_queue="fibonacci")

    def test_simulation_fires_identically(self):
        """The same schedule (including chained events and a cancel)
        fires in the same order at the same times on both queues."""

        def drive(event_queue):
            sim = Simulation(event_queue=event_queue)
            fired = []

            def chain(tag, depth):
                fired.append((round(sim.now, 9), tag))
                if depth > 0:
                    sim.after(0.25 * depth, chain, f"{tag}.{depth}", depth - 1)

            rng = make_rng(11, "sim-differential")
            for i in range(200):
                sim.at(float(rng.uniform(0.0, 40.0)), chain, f"e{i}", 2)
            doomed = sim.at(41.0, fired.append, "never")
            sim.cancel(doomed)
            sim.run()
            return fired

        heap_fired = drive("heap")
        assert heap_fired == drive("calendar")
        assert len(heap_fired) == 600
        assert "never" not in heap_fired

    def test_run_single_identical_across_queues(self):
        """A full experiment run is bit-identical under either queue:
        same dispatch log, same latency stats."""
        base = ExperimentConfig(
            name="eventq-equivalence",
            schedulers=("2dfq",),
            num_threads=4,
            thread_rate=100.0,
            duration=2.0,
            sample_interval=0.1,
        )
        specs = expensive_requests_population(num_small=3, total=6)
        logs = {}
        for queue in ("heap", "calendar"):
            config = dataclasses.replace(base, event_queue=queue)
            metrics = run_single("2dfq", specs, config)
            logs[queue] = [
                (
                    r.tenant_id,
                    round(r.start, 9),
                    round(r.end, 9),
                    r.thread_id,
                    round(r.cost, 9),
                )
                for r in metrics.dispatch_log
            ]
        assert logs["heap"] == logs["calendar"]
        assert len(logs["heap"]) > 50

    def test_config_event_queue_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(
                name="x",
                schedulers=("2dfq",),
                num_threads=2,
                thread_rate=1.0,
                duration=1.0,
                event_queue="splay",
            )
