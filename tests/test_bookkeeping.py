"""Retroactive and refresh charging (paper §5).

Includes the paper's gaming scenario: with naive last-value estimation
and no reconciliation, a tenant alternating one small request with n
concurrent large ones gets ~n times its fair share; retroactive charging
restores long-run fairness.
"""

import pytest

from repro.core import TwoDFQScheduler, WFQScheduler
from repro.estimation import LastValueEstimator, PessimisticEstimator

from conftest import make_request


class TestRetroactiveCharging:
    def test_exact_estimate_leaves_no_residue(self):
        s = WFQScheduler(num_threads=1)
        r = make_request("A", 10.0)
        s.enqueue(r, 0.0)
        out = s.dequeue(0, 0.0)
        tag_after_dispatch = s.tenant_state("A").start_tag
        s.complete(out, 10.0, 10.0)
        assert s.tenant_state("A").start_tag == pytest.approx(tag_after_dispatch)

    def test_undercharge_is_collected(self):
        # Estimator says 1, actual cost 100: the tenant's start tag must
        # end up advanced by the full 100.
        est = LastValueEstimator(initial_estimate=1.0)
        s = WFQScheduler(num_threads=1, estimator=est)
        r = make_request("A", 100.0)
        s.enqueue(r, 0.0)
        out = s.dequeue(0, 0.0)
        assert out.charged_cost == 1.0
        s.complete(out, 100.0, 100.0)
        assert s.tenant_state("A").start_tag == pytest.approx(100.0)

    def test_overcharge_is_refunded(self):
        est = LastValueEstimator(initial_estimate=1000.0)
        s = WFQScheduler(num_threads=1, estimator=est)
        r = make_request("A", 10.0)
        s.enqueue(r, 0.0)
        out = s.dequeue(0, 0.0)
        assert out.charged_cost == 1000.0
        assert s.tenant_state("A").start_tag == pytest.approx(1000.0)
        s.complete(out, 10.0, 10.0)
        # Refund: only the true cost remains charged.
        assert s.tenant_state("A").start_tag == pytest.approx(10.0)

    def test_weight_scales_charge(self):
        s = WFQScheduler(num_threads=1)
        r = make_request("A", 10.0, weight=2.0)
        s.enqueue(r, 0.0)
        s.dequeue(0, 0.0)
        assert s.tenant_state("A").start_tag == pytest.approx(5.0)


class TestRefreshCharging:
    def test_usage_consumes_credit_first(self):
        # Figure 7, Refresh: measurements are absorbed by the pre-paid
        # credit before the tenant's clock moves.
        est = LastValueEstimator(initial_estimate=50.0)
        s = WFQScheduler(num_threads=1, estimator=est)
        r = make_request("A", 100.0)
        s.enqueue(r, 0.0)
        out = s.dequeue(0, 0.0)
        tag = s.tenant_state("A").start_tag
        s.refresh(out, 20.0, 1.0)
        assert out.credit == pytest.approx(30.0)
        assert s.tenant_state("A").start_tag == pytest.approx(tag)

    def test_excess_usage_charged_immediately(self):
        est = LastValueEstimator(initial_estimate=10.0)
        s = WFQScheduler(num_threads=1, estimator=est)
        r = make_request("A", 100.0)
        s.enqueue(r, 0.0)
        out = s.dequeue(0, 0.0)
        tag = s.tenant_state("A").start_tag
        s.refresh(out, 30.0, 1.0)  # 10 credit, 20 excess
        assert out.credit == 0.0
        assert s.tenant_state("A").start_tag == pytest.approx(tag + 20.0)

    def test_refresh_then_complete_totals_actual_cost(self):
        est = LastValueEstimator(initial_estimate=10.0)
        s = WFQScheduler(num_threads=1, estimator=est)
        r = make_request("A", 100.0)
        s.enqueue(r, 0.0)
        out = s.dequeue(0, 0.0)
        for _ in range(9):
            s.refresh(out, 10.0, 1.0)
        s.complete(out, 10.0, 10.0)
        assert s.tenant_state("A").start_tag == pytest.approx(100.0)
        assert out.reported_usage == pytest.approx(100.0)

    def test_estimator_learns_total_not_increment(self):
        est = PessimisticEstimator()
        s = TwoDFQScheduler(num_threads=1, estimator=est)
        r = make_request("A", 100.0, api="G")
        s.enqueue(r, 0.0)
        out = s.dequeue(0, 0.0)
        s.refresh(out, 60.0, 1.0)
        s.complete(out, 40.0, 2.0)
        assert est.peek("A", "G") == pytest.approx(100.0)


class TestChargeReconciliation:
    """Refresh increments are wallclock-delta products whose float sum
    can drift from the true cost; complete() must reconcile the final
    increment so every request charges exactly ``cost / weight``."""

    def test_refresh_drift_reconciled_at_complete(self):
        # Azure-scale request driven by awkward refresh intervals whose
        # increments (interval * rate) do not sum to the cost exactly.
        est = LastValueEstimator(initial_estimate=2.5e5)
        s = WFQScheduler(num_threads=1, thread_rate=1.0e6, estimator=est)
        cost, weight, rate = 1.0e6, 3.0, 1.0e6
        r = make_request("A", cost, weight=weight)
        s.enqueue(r, 0.0)
        out = s.dequeue(0, 0.0)
        now = last = 0.0
        for _ in range(97):
            now += 0.0103
            s.refresh(out, (now - last) * rate, now)
            last = now
        end = cost / rate
        s.complete(out, (end - last) * rate, end)
        # The estimator observes the exact cost, not the drifted sum...
        assert out.reported_usage == cost
        assert est.peek("A", "api") == cost
        # ...and the tenant was charged exactly cost / weight.
        assert s.tenant_state("A").start_tag == pytest.approx(
            cost / weight, rel=1e-12
        )

    def test_total_charged_virtual_time_matches_costs(self):
        """Over many requests with interleaved refreshes, total charged
        virtual time equals sum(cost) / weight within 1e-9 relative --
        no residual accumulates."""
        est = LastValueEstimator(initial_estimate=1.0e3)
        s = WFQScheduler(num_threads=1, thread_rate=1.0e6, estimator=est)
        weight, rate = 2.0, 1.0e6
        costs = [1.0e6 / 3.0, 7.7e5, 1.23456e4, 9.9e5, 3.333e5] * 40
        for cost in costs:
            s.enqueue(make_request("A", cost, weight=weight), 0.0)
        now = 0.0
        for _ in costs:
            out = s.dequeue(0, now)
            last = now
            end = now + out.cost / rate
            # Three interim reports at awkward fractions, then complete.
            for frac in (0.31, 0.57, 0.93):
                t = now + frac * (end - now)
                s.refresh(out, (t - last) * rate, t)
                last = t
            s.complete(out, (end - last) * rate, end)
            now = end
        expected = sum(costs) / weight
        assert s.tenant_state("A").start_tag == pytest.approx(expected, rel=1e-9)
        per_request = s.tenant_state("A").start_tag - expected
        assert abs(per_request) / len(costs) < 1e-9 * (sum(costs) / len(costs))


class TestGamingAttack:
    """§5: without retroactive charging, last-value estimation lets a
    tenant earn ~n times its fair share on n threads.  With it, the
    attacker's long-run share stays fair."""

    def _run_attack(self, horizon: float = 4000.0) -> float:
        n = 4
        est = LastValueEstimator(initial_estimate=1.0)
        s = WFQScheduler(num_threads=n, thread_rate=1.0, estimator=est)
        import heapq

        # Victim: honest tenant with size-10 requests.  Attacker:
        # alternates 1 small request with n large ones of size 100
        # (the large ones get estimated at ~1 by the preceding small).
        attack_cycle = [1.0] + [100.0] * n
        attack_index = [0]

        def next_attack_cost() -> float:
            cost = attack_cycle[attack_index[0] % len(attack_cycle)]
            attack_index[0] += 1
            return cost

        for _ in range(2 * n):
            s.enqueue(make_request("victim", 10.0), 0.0)
            s.enqueue(make_request("attacker", next_attack_cost()), 0.0)
        free = [(0.0, i) for i in range(n)]
        heapq.heapify(free)
        completions: list = []
        service = {"victim": 0.0, "attacker": 0.0}
        while free:
            now, thread = heapq.heappop(free)
            if now >= horizon:
                continue
            while completions and completions[0][0] <= now:
                end, _, done = heapq.heappop(completions)
                s.complete(done, done.cost, end)
            request = s.dequeue(thread, now)
            end = now + request.cost
            if end <= horizon:
                service[request.tenant_id] += request.cost
            if request.tenant_id == "victim":
                s.enqueue(make_request("victim", 10.0), now)
            else:
                s.enqueue(make_request("attacker", next_attack_cost()), now)
            heapq.heappush(completions, (end, request.seqno, request))
            heapq.heappush(free, (end, thread))
        return service["attacker"] / service["victim"]

    def test_attacker_held_to_fair_share(self):
        ratio = self._run_attack()
        # Without retroactive charging the ratio approaches ~n (the
        # paper's (kn+1)/(n+k) bound); with it the attacker stays near
        # its fair share.
        assert ratio < 1.5, f"attacker got {ratio}x the victim's service"
