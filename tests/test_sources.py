"""Unit tests for workload sources driving a live server."""

import pytest

from repro.core import make_scheduler
from repro.errors import ConfigurationError
from repro.simulator import (
    ArrivalProcessSource,
    BackloggedSource,
    Simulation,
    ThreadPoolServer,
    TraceSource,
)
from repro.workloads import (
    Backlogged,
    FixedCost,
    PoissonArrivals,
    TenantSpec,
    attach_specs,
)


def build_server(num_threads=2, rate=1.0):
    sim = Simulation()
    scheduler = make_scheduler("wfq", num_threads=num_threads, thread_rate=rate)
    server = ThreadPoolServer(
        sim, scheduler, num_threads=num_threads, rate=rate, refresh_interval=None
    )
    return sim, server


class TestTraceSource:
    def test_replays_records_at_times(self):
        sim, server = build_server()
        seen = []
        server.on_submit(lambda r: seen.append((sim.now, r.tenant_id, r.cost)))
        records = [(0.5, "A", "x", 1.0), (1.5, "B", "y", 2.0)]
        TraceSource(server, records).start()
        sim.run()
        assert seen == [(0.5, "A", 1.0), (1.5, "B", 2.0)]

    def test_speed_compresses_time(self):
        sim, server = build_server()
        seen = []
        server.on_submit(lambda r: seen.append(sim.now))
        TraceSource(server, [(2.0, "A", "x", 1.0)], speed=2.0).start()
        sim.run()
        assert seen == [1.0]

    def test_unsorted_records_rejected(self):
        sim, server = build_server()
        source = TraceSource(server, [(2.0, "A", "x", 1.0), (1.0, "A", "x", 1.0)])
        source.start()
        with pytest.raises(ConfigurationError):
            sim.run()

    def test_invalid_speed(self):
        sim, server = build_server()
        with pytest.raises(ConfigurationError):
            TraceSource(server, [], speed=0.0)


class TestBackloggedSource:
    def test_maintains_window(self):
        sim, server = build_server(num_threads=1)
        source = BackloggedSource(server, "A", lambda: ("x", 1.0), window=3)
        source.start()
        sim.run(until=0.0)
        # 1 running + 2 queued.
        assert server.scheduler.backlog == 2
        assert server.busy_workers == 1

    def test_submits_on_completion(self):
        sim, server = build_server(num_threads=1)
        source = BackloggedSource(server, "A", lambda: ("x", 1.0), window=1)
        source.start()
        sim.run(until=5.5)
        # Completions at t=1..5 each trigger one submission, plus the
        # initial prime: 6 submitted, 5 completed, 1 in flight.
        assert source.submitted == 6
        assert server.completed_requests == 5

    def test_limit_bounds_submissions(self):
        sim, server = build_server(num_threads=1)
        source = BackloggedSource(server, "A", lambda: ("x", 1.0), window=2, limit=4)
        source.start()
        sim.run()
        assert source.submitted == 4
        assert server.completed_requests == 4

    def test_window_validation(self):
        sim, server = build_server()
        with pytest.raises(ConfigurationError):
            BackloggedSource(server, "A", lambda: ("x", 1.0), window=0)

    def test_start_time_delays_priming(self):
        sim, server = build_server()
        seen = []
        server.on_submit(lambda r: seen.append(sim.now))
        BackloggedSource(
            server, "A", lambda: ("x", 1.0), window=2, start_time=3.0
        ).start()
        sim.run(until=3.0)
        assert seen == [3.0, 3.0]


class TestArrivalProcessSource:
    def test_generates_until_horizon(self):
        sim, server = build_server(num_threads=2, rate=100.0)
        gaps = iter([0.5] * 100)
        source = ArrivalProcessSource(
            server, "A", lambda: next(gaps), lambda: ("x", 1.0), until=2.4
        )
        source.start()
        sim.run()
        assert source.submitted == 4  # t = 0.5, 1.0, 1.5, 2.0

    def test_limit(self):
        sim, server = build_server(rate=100.0)
        source = ArrivalProcessSource(
            server, "A", lambda: 0.1, lambda: ("x", 1.0), limit=3
        )
        source.start()
        sim.run(until=10.0)
        assert source.submitted == 3


class TestAttachSpecs:
    def test_mixed_population(self):
        sim, server = build_server(num_threads=2, rate=10.0)
        specs = [
            TenantSpec(
                tenant_id="closed",
                api_costs={"x": FixedCost(1.0)},
                arrivals=Backlogged(window=2),
            ),
            TenantSpec(
                tenant_id="open",
                api_costs={"y": FixedCost(2.0)},
                arrivals=PoissonArrivals(rate=20.0),
            ),
        ]
        sources = attach_specs(server, specs, seed=1, duration=3.0)
        assert len(sources) == 2
        sim.run(until=3.0)
        assert server.completed_cost("closed") > 0
        assert server.completed_cost("open") > 0

    def test_open_loop_requires_duration(self):
        from repro.errors import WorkloadError

        sim, server = build_server()
        specs = [
            TenantSpec(
                tenant_id="open",
                api_costs={"y": FixedCost(2.0)},
                arrivals=PoissonArrivals(rate=20.0),
            )
        ]
        with pytest.raises(WorkloadError):
            attach_specs(server, specs, seed=1)

    def test_same_seed_same_arrivals_across_schedulers(self):
        """The controlled-comparison requirement: identical workload
        regardless of scheduler."""
        def arrivals_for(scheduler_name):
            sim = Simulation()
            scheduler = make_scheduler(scheduler_name, num_threads=2)
            server = ThreadPoolServer(
                sim, scheduler, num_threads=2, rate=1.0, refresh_interval=None
            )
            seen = []
            server.on_submit(lambda r: seen.append((sim.now, r.tenant_id, r.cost)))
            specs = [
                TenantSpec(
                    tenant_id="open",
                    api_costs={"y": FixedCost(2.0)},
                    arrivals=PoissonArrivals(rate=30.0),
                )
            ]
            attach_specs(server, specs, seed=5, duration=2.0)
            sim.run(until=2.0)
            return seen

        assert arrivals_for("wfq") == arrivals_for("2dfq")
