"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro import Simulation, ThreadPoolServer, make_scheduler, scheduler_names
from repro.metrics import MetricsCollector
from repro.simulator import BackloggedSource
from repro.workloads import attach_specs, named_tenants


class TestFullStackSmoke:
    @pytest.mark.parametrize("name", ["fifo", "wfq", "wf2q", "2dfq", "2dfq-e",
                                      "wfq-e", "drr", "sfq", "round-robin"])
    def test_server_runs_every_scheduler(self, name):
        sim = Simulation()
        scheduler = make_scheduler(name, num_threads=4, thread_rate=100.0)
        server = ThreadPoolServer(
            sim, scheduler, num_threads=4, rate=100.0, refresh_interval=0.05
        )
        collector = MetricsCollector(server, sample_interval=0.1)
        BackloggedSource(server, "A", lambda: ("x", 1.0), window=2).start()
        BackloggedSource(server, "B", lambda: ("y", 25.0), window=2).start()
        sim.run(until=3.0)
        result = collector.result()
        assert server.completed_requests > 10
        assert result.latency_stats("A").count > 0
        # Conservation: total service == capacity * time when saturated.
        total = sum(
            result.service_series(t).actual[-1] for t in result.tenants()
        )
        assert total == pytest.approx(4 * 100.0 * 3.0, rel=0.02)

    def test_named_tenants_replay_end_to_end(self):
        sim = Simulation()
        scheduler = make_scheduler("2dfq", num_threads=8, thread_rate=1.0e6)
        server = ThreadPoolServer(
            sim, scheduler, num_threads=8, rate=1.0e6, refresh_interval=None
        )
        collector = MetricsCollector(server, sample_interval=0.1)
        attach_specs(server, named_tenants(), seed=3, duration=2.0)
        sim.run(until=2.0)
        result = collector.result()
        served = [t for t in result.tenants() if
                  result.service_series(t).actual[-1] > 0]
        assert len(served) >= 10  # nearly all of T1..T12 get service


class TestCrossSchedulerInvariants:
    def test_total_service_is_scheduler_invariant_under_saturation(self):
        """Work conservation: a saturated server does the same total
        work regardless of scheduling policy."""
        totals = {}
        for name in ("fifo", "wfq", "wf2q", "2dfq", "2dfq-e"):
            sim = Simulation()
            scheduler = make_scheduler(name, num_threads=4, thread_rate=100.0)
            server = ThreadPoolServer(
                sim, scheduler, num_threads=4, rate=100.0,
                refresh_interval=0.05,
            )
            collector = MetricsCollector(server, sample_interval=0.1)
            for i in range(6):
                cost = 1.0 if i % 2 == 0 else 40.0
                BackloggedSource(
                    server, f"T{i}", lambda c=cost: ("x", c), window=2
                ).start()
            sim.run(until=4.0)
            result = collector.result()
            totals[name] = sum(
                result.service_series(t).actual[-1] for t in result.tenants()
            )
        values = list(totals.values())
        assert max(values) - min(values) < 0.05 * max(values)

    def test_gps_reference_equals_actual_totals(self):
        """GPS serves exactly as much total work as the real server when
        both are continuously backlogged."""
        sim = Simulation()
        scheduler = make_scheduler("wfq", num_threads=2, thread_rate=50.0)
        server = ThreadPoolServer(
            sim, scheduler, num_threads=2, rate=50.0, refresh_interval=None
        )
        collector = MetricsCollector(server, sample_interval=0.1)
        BackloggedSource(server, "A", lambda: ("x", 2.0), window=3).start()
        BackloggedSource(server, "B", lambda: ("y", 30.0), window=3).start()
        sim.run(until=5.0)
        result = collector.result()
        actual_total = sum(
            result.service_series(t).actual[-1] for t in ("A", "B")
        )
        gps_total = sum(result.service_series(t).gps[-1] for t in ("A", "B"))
        # GPS can deliver at most what arrived; both systems saturate.
        assert gps_total == pytest.approx(actual_total, rel=0.05)

    def test_registry_names_all_construct_and_run(self):
        for name in scheduler_names():
            sim = Simulation()
            scheduler = make_scheduler(name, num_threads=2, thread_rate=10.0)
            server = ThreadPoolServer(
                sim, scheduler, num_threads=2, rate=10.0, refresh_interval=0.1
            )
            BackloggedSource(server, "A", lambda: ("x", 1.0), window=1,
                             limit=5).start()
            sim.run()
            assert server.completed_requests == 5, name


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        def run_once():
            sim = Simulation()
            scheduler = make_scheduler("2dfq-e", num_threads=4,
                                       thread_rate=100.0)
            server = ThreadPoolServer(
                sim, scheduler, num_threads=4, rate=100.0,
                refresh_interval=0.01,
            )
            collector = MetricsCollector(server, sample_interval=0.1)
            attach_specs(server, named_tenants()[:6], seed=9, duration=1.0)
            sim.run(until=1.0)
            result = collector.result()
            return {
                t: result.service_series(t).actual[-1]
                for t in result.tenants()
            }

        assert run_once() == run_once()
