"""Unit tests for metrics: service series, latency, summaries, collector."""

import numpy as np
import pytest

from repro.core import make_scheduler
from repro.metrics import (
    MetricsCollector,
    ServiceSeries,
    ServiceTracker,
    cost_summary,
    latency_stats,
    speedup,
)
from repro.metrics.latency import percentile_table
from repro.metrics.summary import cdf_points, coefficient_of_variation
from repro.simulator import BackloggedSource, Simulation, ThreadPoolServer


class TestServiceSeries:
    def _series(self):
        times = np.array([0.1, 0.2, 0.3, 0.4])
        actual = np.array([1.0, 2.0, 2.0, 4.0])
        gps = np.array([1.0, 2.0, 3.0, 4.0])
        return ServiceSeries("T", times, actual, gps)

    def test_service_rate(self):
        series = self._series()
        assert series.service_rate() == pytest.approx([1.0, 1.0, 0.0, 2.0])

    def test_lag_units_sign_convention(self):
        # Positive = ahead of GPS.
        series = self._series()
        assert series.lag_units() == pytest.approx([0.0, 0.0, -1.0, 0.0])

    def test_lag_seconds(self):
        series = self._series()
        assert series.lag_seconds(10.0) == pytest.approx([0.0, 0.0, -0.1, 0.0])
        with pytest.raises(ValueError):
            series.lag_seconds(0.0)

    def test_lag_sigma(self):
        series = self._series()
        expected = np.std([0.0, 0.0, -1.0, 0.0])
        assert series.lag_sigma() == pytest.approx(expected)
        assert series.lag_sigma(2.0) == pytest.approx(expected / 2.0)


class TestServiceTracker:
    def test_backfills_late_tenants(self):
        tracker = ServiceTracker()
        tracker.observe(0.1, {"A": 1.0}, {"A": 1.0})
        tracker.observe(0.2, {"A": 2.0, "B": 5.0}, {"A": 2.0, "B": 4.0})
        series_b = tracker.series("B")
        assert series_b.actual == pytest.approx([0.0, 5.0])
        assert series_b.gps == pytest.approx([0.0, 4.0])

    def test_pads_missing_trailing_samples(self):
        tracker = ServiceTracker()
        tracker.observe(0.1, {"A": 1.0, "B": 2.0}, {})
        tracker.observe(0.2, {"A": 2.0}, {})
        series_b = tracker.series("B")
        assert series_b.actual == pytest.approx([2.0, 2.0])

    def test_tenants_sorted(self):
        tracker = ServiceTracker()
        tracker.observe(0.1, {"B": 1.0, "A": 1.0}, {})
        assert tracker.tenants() == ["A", "B"]


class TestLatencyStats:
    def test_empty(self):
        stats = latency_stats([])
        assert stats.empty
        assert np.isnan(stats.p99)

    def test_percentiles(self):
        samples = list(np.linspace(0.0, 1.0, 101))
        stats = latency_stats(samples)
        assert stats.count == 101
        assert stats.p50 == pytest.approx(0.5)
        assert stats.p99 == pytest.approx(0.99)
        assert stats.maximum == 1.0

    def test_percentile_table(self):
        table = percentile_table({"A": [1.0, 2.0], "B": []}, percentile=50)
        assert table["A"] == pytest.approx(1.5)
        assert np.isnan(table["B"])


class TestSpeedup:
    def test_paper_convention(self):
        # §6.2.2 example: 4.5ms baseline vs 3.3ms improved -> ~1.4x.
        assert speedup(0.0045, 0.0033) == pytest.approx(1.36, abs=0.01)

    def test_slowdown_is_negative(self):
        assert speedup(1.0, 2.0) == pytest.approx(-2.0)

    def test_parity(self):
        assert speedup(1.0, 1.0) == pytest.approx(1.0)

    def test_nan_inputs(self):
        assert np.isnan(speedup(float("nan"), 1.0))
        assert np.isnan(speedup(1.0, 0.0))


class TestSummaries:
    def test_cost_summary_decades(self):
        samples = [100.0] * 50 + [1.0e6] * 50
        summary = cost_summary(samples)
        assert summary.decades_of_spread() == pytest.approx(4.0, abs=0.1)

    def test_cov(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0
        assert np.isnan(coefficient_of_variation([]))

    def test_cdf_points(self):
        values, freq = cdf_points({"a": 3.0, "b": 1.0, "c": float("nan")})
        assert values == pytest.approx([1.0, 3.0])
        assert freq == pytest.approx([0.5, 1.0])


class TestCollector:
    def _run(self, scheduler_name="wfq", duration=2.0):
        sim = Simulation()
        scheduler = make_scheduler(scheduler_name, num_threads=2, thread_rate=10.0)
        server = ThreadPoolServer(
            sim, scheduler, num_threads=2, rate=10.0, refresh_interval=None
        )
        collector = MetricsCollector(server, sample_interval=0.1)
        BackloggedSource(server, "A", lambda: ("x", 1.0), window=2).start()
        BackloggedSource(server, "B", lambda: ("y", 5.0), window=2).start()
        sim.run(until=duration)
        return collector.result()

    def test_service_sampling(self):
        result = self._run()
        assert set(result.tenants()) == {"A", "B"}
        series = result.service_series("A")
        assert series.times.size == 20
        assert series.actual[-1] > 0
        # Total service is capacity-bounded.
        total = result.service_series("A").actual[-1] + result.service_series(
            "B"
        ).actual[-1]
        assert total <= 2 * 10.0 * 2.0 + 1e-6

    def test_gps_tracks_equal_share(self):
        result = self._run()
        a = result.service_series("A")
        # Two equal backlogged tenants: GPS gives each half of capacity.
        assert a.gps[-1] == pytest.approx(2.0 * 10.0 * 2.0 / 2, rel=0.05)

    def test_latencies_recorded(self):
        result = self._run()
        assert result.latency_stats("A").count > 0
        assert result.latency_p99("A") > 0

    def test_dispatch_log_and_occupancy(self):
        result = self._run()
        assert result.dispatch_log
        grid = result.occupancy_matrix(0.0, 2.0, 0.1, 2)
        assert grid.shape == (2, 20)
        assert (grid > 0).any()

    def test_partition_measure_under_2dfq(self):
        result = self._run("2dfq")
        means = result.thread_cost_partition(2)
        # Thread 0 runs the expensive requests under 2DFQ.
        assert means[0] > means[1]

    def test_gini_sampled(self):
        result = self._run()
        assert result.gini_values.size > 0
        assert (result.gini_values >= 0).all()
        assert (result.gini_values <= 1).all()

    def test_warmup_excludes_early_samples(self):
        sim = Simulation()
        scheduler = make_scheduler("wfq", num_threads=1, thread_rate=10.0)
        server = ThreadPoolServer(
            sim, scheduler, num_threads=1, rate=10.0, refresh_interval=None
        )
        collector = MetricsCollector(server, sample_interval=0.1, warmup=1.0)
        BackloggedSource(server, "A", lambda: ("x", 1.0), window=1).start()
        sim.run(until=2.0)
        result = collector.result()
        assert result.service_series("A").times.min() >= 1.0

    def _warmup_run(self, warmup):
        sim = Simulation()
        scheduler = make_scheduler("wfq", num_threads=1, thread_rate=10.0)
        server = ThreadPoolServer(
            sim, scheduler, num_threads=1, rate=10.0, refresh_interval=None
        )
        collector = MetricsCollector(
            server, sample_interval=0.1, warmup=warmup
        )
        BackloggedSource(server, "A", lambda: ("x", 1.0), window=1).start()
        BackloggedSource(server, "B", lambda: ("y", 1.0), window=1).start()
        sim.run(until=2.0)
        return collector.result()

    def test_warmup_excludes_latency_samples(self):
        full = self._warmup_run(warmup=0.0)
        trimmed = self._warmup_run(warmup=1.0)
        # Only completions at t >= warmup count; roughly half survive.
        assert 0 < trimmed.latency_stats("A").count < full.latency_stats("A").count
        # Warmup spanning the whole run leaves no latency samples.
        assert self._warmup_run(warmup=2.5).latency_stats("A").empty

    def test_warmup_excludes_gini_samples(self):
        full = self._warmup_run(warmup=0.0)
        trimmed = self._warmup_run(warmup=1.0)
        assert 0 < trimmed.gini_values.size < full.gini_values.size
        assert trimmed.gini_times.min() >= 1.0

    def test_record_dispatches_off_yields_empty_log(self):
        # Regression: the log must actually stay empty (and not merely
        # start empty) when dispatch recording is disabled.
        sim = Simulation()
        scheduler = make_scheduler("wfq", num_threads=1, thread_rate=10.0)
        server = ThreadPoolServer(
            sim, scheduler, num_threads=1, rate=10.0, refresh_interval=None
        )
        collector = MetricsCollector(
            server, sample_interval=0.1, record_dispatches=False
        )
        BackloggedSource(server, "A", lambda: ("x", 1.0), window=1).start()
        sim.run(until=1.0)
        result = collector.result()
        assert result.dispatch_log == []
        # The rest of the metrics are unaffected.
        assert result.latency_stats("A").count > 0

    def test_invalid_interval(self):
        sim = Simulation()
        scheduler = make_scheduler("wfq", num_threads=1)
        server = ThreadPoolServer(
            sim, scheduler, num_threads=1, refresh_interval=None
        )
        with pytest.raises(ValueError):
            MetricsCollector(server, sample_interval=0.0)

    def test_service_rate_has_no_warmup_spike(self):
        # Regression: with a warmup, the first post-warmup sample used to
        # difference against 0, so the first service_rate entry was the
        # entire pre-warmup cumulative service.  The retained pre-warmup
        # baseline keeps every entry a one-interval quantity.
        result = self._warmup_run(warmup=1.0)
        rate = result.service_series("A").service_rate()
        # One 0.1 s interval at a 10 units/s thread can deliver at most
        # ~1 unit of service (plus boundary slop); the old bug produced
        # a first entry near the ~5 units accumulated during warmup.
        assert rate[0] <= 10.0 * 0.1 + 0.5
        assert np.max(rate) <= 10.0 * 0.1 + 0.5

    def test_warmup_on_sample_boundary_keeps_boundary_sample(self):
        # warmup exactly on the sampling grid: the t == warmup sample is
        # post-warmup (t >= warmup), and the sample just before it
        # becomes the baseline.
        result = self._warmup_run(warmup=0.5)
        times = result.service_series("A").times
        assert times.min() == pytest.approx(0.5)
        result_past = self._warmup_run(warmup=0.55)
        assert result_past.service_series("A").times.min() == pytest.approx(0.6)


class TestOccupancyBoundaryBins:
    def _metrics(self, dispatch_log):
        from repro.metrics.collector import RunMetrics

        return RunMetrics(
            tracker=ServiceTracker(),
            latencies={},
            dispatch_log=dispatch_log,
            gini_times=np.asarray([]),
            gini_values=np.asarray([]),
            sample_interval=0.1,
        )

    def test_shared_bin_goes_to_larger_overlap(self):
        # Regression: the record iterated later used to overwrite shared
        # boundary bins unconditionally.  Bin [1, 2): the first record
        # covers 0.6 of it, the second only 0.4 -- the first must win.
        from repro.metrics.collector import DispatchRecord

        log = [
            DispatchRecord(0, "A", "x", 5.0, start=0.0, end=1.6),
            DispatchRecord(0, "B", "y", 7.0, start=1.6, end=3.0),
        ]
        grid = self._metrics(log).occupancy_matrix(0.0, 3.0, 1.0, 1)
        assert grid[0].tolist() == [5.0, 5.0, 7.0]

    def test_shared_bin_tie_goes_to_later_start(self):
        from repro.metrics.collector import DispatchRecord

        log = [
            DispatchRecord(0, "A", "x", 5.0, start=0.0, end=1.5),
            DispatchRecord(0, "B", "y", 7.0, start=1.5, end=3.0),
        ]
        grid = self._metrics(log).occupancy_matrix(0.0, 3.0, 1.0, 1)
        assert grid[0].tolist() == [5.0, 7.0, 7.0]

    def test_full_bins_unaffected(self):
        from repro.metrics.collector import DispatchRecord

        log = [
            DispatchRecord(0, "A", "x", 2.0, start=0.0, end=2.0),
            DispatchRecord(1, "B", "y", 3.0, start=0.0, end=1.0),
        ]
        grid = self._metrics(log).occupancy_matrix(0.0, 2.0, 1.0, 2)
        assert grid[0].tolist() == [2.0, 2.0]
        assert grid[1].tolist() == [3.0, 0.0]
