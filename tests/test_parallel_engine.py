"""Tests for the parallel experiment engine (repro.parallel).

The load-bearing property is the determinism contract (DESIGN.md §10):
for any ``jobs`` and any cache state, results are numerically identical
to a serial, uncached run.  Latency p99 is NaN for tenants that complete
no requests at the scaled-down test durations, so comparisons here are
NaN-aware (``nan != nan`` would otherwise report false drift).
"""

import dataclasses
import json
import math
import pickle
import time
from pathlib import Path

import pytest

from repro.errors import CellExecutionError, ConfigurationError
from repro.experiments.expensive_requests import expensive_requests_config
from repro.experiments.runner import run_comparison
from repro.experiments.suite import SuiteParameters, run_suite
from repro.obs import clear_session, current_session, trace_session
from repro.parallel import (
    CellFailure,
    ExecutionContext,
    RunCache,
    RunSpec,
    current_execution,
    execution_context,
    run_cells,
)
from repro.workloads.synthetic import expensive_requests_population

SMALL_PARAMS = SuiteParameters(
    num_experiments=2,
    threads=(2, 4),
    replay_tenants=(2, 6),
    replay_speed=(0.5, 1.0),
    backlogged_tenants=(2, 4),
    expensive_tenants=(0, 2),
    unpredictable_tenants=(0, 2),
    duration=0.4,
    thread_rate=1000.0,
)


def small_config(schedulers=("wfq", "2dfq"), seed=0):
    return expensive_requests_config(
        schedulers=schedulers, num_threads=2, thread_rate=100.0,
        duration=1.0, seed=seed,
    )


def small_population():
    return expensive_requests_population(num_small=3, total=4)


def assert_p99_equal(a, b):
    """Compare nested p99 dicts treating NaN == NaN."""
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert left.keys() == right.keys()
        for scheduler in left:
            assert left[scheduler].keys() == right[scheduler].keys()
            for tenant, x in left[scheduler].items():
                y = right[scheduler][tenant]
                assert (math.isnan(x) and math.isnan(y)) or x == y, (
                    scheduler, tenant, x, y,
                )


class TestDeterminism:
    def test_run_comparison_parallel_matches_serial(self):
        config = small_config()
        serial = run_comparison(small_population(), config, jobs=1)
        fanned = run_comparison(small_population(), config, jobs=2)
        assert serial.runs.keys() == fanned.runs.keys()
        for name in serial.runs:
            assert pickle.dumps(serial[name].latencies) == pickle.dumps(
                fanned[name].latencies
            )
            assert pickle.dumps(serial[name].gini_values) == pickle.dumps(
                fanned[name].gini_values
            )

    def test_run_suite_jobs4_matches_serial(self):
        serial = run_suite(SMALL_PARAMS, schedulers=("wfq", "2dfq-e"))
        fanned = run_suite(
            SMALL_PARAMS, schedulers=("wfq", "2dfq-e"), jobs=4
        )
        assert serial.experiments == fanned.experiments
        assert_p99_equal(serial.p99, fanned.p99)

    def test_cached_rerun_matches_cold(self, tmp_path):
        cache = RunCache(tmp_path)
        config = small_config(schedulers=("wfq",))
        cold = run_comparison(small_population(), config, cache=cache)
        assert cache.stores == 1 and cache.hits == 0
        warm = run_comparison(small_population(), config, cache=cache)
        assert cache.hits == 1
        assert pickle.dumps(cold["wfq"].latencies) == pickle.dumps(
            warm["wfq"].latencies
        )

    def test_cache_shared_across_jobs_settings(self, tmp_path):
        """A cache warmed serially must hit when re-read with jobs > 1."""
        cache = RunCache(tmp_path)
        config = small_config()
        run_comparison(small_population(), config, jobs=1, cache=cache)
        before = cache.hits
        run_comparison(small_population(), config, jobs=2, cache=cache)
        assert cache.hits == before + len(config.schedulers)


class TestExecutionContext:
    def test_default_is_serial_uncached(self):
        ctx = current_execution()
        assert ctx.jobs == 1 and ctx.cache is None

    def test_context_sets_and_restores(self, tmp_path):
        cache = RunCache(tmp_path)
        with execution_context(jobs=3, cache=cache):
            assert current_execution() == ExecutionContext(3, cache)
            with execution_context(jobs=1):
                assert current_execution().jobs == 1
            assert current_execution().jobs == 3
        assert current_execution().jobs == 1

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            with execution_context(jobs=0):
                pass

    def test_context_drives_run_comparison(self, tmp_path):
        cache = RunCache(tmp_path)
        config = small_config(schedulers=("wfq",))
        with execution_context(jobs=2, cache=cache):
            run_comparison(small_population(), config)
        assert cache.stores == 1


class TestTraceSemantics:
    def test_trace_session_with_jobs_gt_1_raises(self, tmp_path):
        config = small_config(schedulers=("wfq",))
        with trace_session(tmp_path / "traces"):
            with pytest.raises(ConfigurationError, match="jobs"):
                run_comparison(small_population(), config, jobs=2)

    def test_trace_session_serial_still_traces(self, tmp_path):
        config = small_config(schedulers=("wfq",))
        with trace_session(tmp_path / "traces") as session:
            run_comparison(small_population(), config, jobs=1)
        assert len(session.runs) == 1

    def test_cache_hit_recorded_in_session_manifest(self, tmp_path):
        import json

        cache = RunCache(tmp_path / "cache")
        config = small_config(schedulers=("wfq",))
        run_comparison(small_population(), config, cache=cache)
        with trace_session(tmp_path / "traces") as session:
            run_comparison(small_population(), config, cache=cache)
        assert cache.hits == 1
        assert len(session.runs) == 1
        manifest = json.loads(
            (tmp_path / "traces" / session.runs[0] / "manifest.json").read_text()
        )
        assert manifest["cache"]["status"] == "hit"
        assert len(manifest["cache"]["key"]) == 64

    def test_clear_session(self, tmp_path):
        with trace_session(tmp_path):
            assert current_session() is not None
            clear_session()
            assert current_session() is None

    def test_workers_run_with_tracing_disabled(self, tmp_path):
        """Pool workers must never inherit the parent's trace session
        (fork copies module globals); run_cells clears it per cell."""
        from repro.parallel.engine import _run_cell

        class Probe:
            def execute(self):
                return current_session() is None

        with trace_session(tmp_path):
            assert _run_cell(Probe()) is True
        assert current_session() is None


class TestNoStateLeakage:
    """run_comparison must not mutate its inputs between scheduler runs:
    every run sees identical specs/config/trace (the old serial loop
    shared one materialized trace across runs, so any in-place mutation
    would leak from one scheduler into the next)."""

    def test_inputs_unchanged_by_run(self):
        config = small_config()
        specs = small_population()
        before = pickle.dumps((specs, config))
        run_comparison(specs, config)
        assert pickle.dumps((specs, config)) == before

    def test_back_to_back_runs_identical(self):
        config = small_config()
        first = run_comparison(small_population(), config)
        second = run_comparison(small_population(), config)
        for name in first.runs:
            assert pickle.dumps(first[name].latencies) == pickle.dumps(
                second[name].latencies
            )


class _ValueCell:
    """Picklable trivial cell for the merge-order test."""

    def __init__(self, value):
        self.value = value

    def label(self):
        return f"cell-{self.value}"

    def execute(self):
        return self.value


class TestRunCells:
    def test_results_merge_in_cell_order(self):
        cells = [_ValueCell(i) for i in range(8)]
        assert run_cells(cells, jobs=4) == list(range(8))
        assert run_cells(cells, jobs=1) == list(range(8))

    def test_worker_errors_propagate(self):
        config = small_config(schedulers=("no-such-scheduler",))
        with pytest.raises(CellExecutionError) as excinfo:
            run_cells(
                [
                    RunSpec(
                        scheduler="no-such-scheduler",
                        specs=tuple(small_population()),
                        config=config,
                    )
                ],
                jobs=2,
            )
        # Regression: the wrapper names the failing cell, not just the
        # anonymous worker traceback.
        assert excinfo.value.index == 0
        assert "no-such-scheduler" in excinfo.value.label


@dataclasses.dataclass(frozen=True)
class _CrashCell:
    """Picklable cell that always raises."""

    tag: int = 0

    def label(self):
        return f"crash-{self.tag}"

    def execute(self):
        raise ValueError("boom")


@dataclasses.dataclass(frozen=True)
class _SleepCell:
    """Picklable cell that wedges its worker."""

    seconds: float = 30.0

    def label(self):
        return "sleeper"

    def execute(self):
        time.sleep(self.seconds)
        return "woke"


@dataclasses.dataclass(frozen=True)
class _FlakyCell:
    """Fails the first ``fail_times`` executions, then succeeds.

    Attempt state lives in a file so the count survives process
    boundaries (pool workers re-execute retried cells)."""

    marker: str
    fail_times: int

    def label(self):
        return "flaky"

    def execute(self):
        path = Path(self.marker)
        count = int(path.read_text()) if path.exists() else 0
        path.write_text(str(count + 1))
        if count < self.fail_times:
            raise ValueError(f"transient failure {count}")
        return "ok"


class TestFailurePolicy:
    def test_cell_execution_error_is_attributable(self):
        cells = [_ValueCell(0), _CrashCell(tag=7)]
        with pytest.raises(CellExecutionError) as excinfo:
            run_cells(cells, jobs=1)
        err = excinfo.value
        assert err.index == 1
        assert err.cell is cells[1]
        assert err.label == "crash-7"
        assert "crash-7" in str(err) and "boom" in str(err)
        assert isinstance(err.__cause__, ValueError)

    def test_pool_worker_errors_wrapped_identically(self):
        cells = [_ValueCell(0), _CrashCell(tag=3)]
        with pytest.raises(CellExecutionError) as excinfo:
            run_cells(cells, jobs=2)
        assert excinfo.value.index == 1
        assert excinfo.value.label == "crash-3"

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_quarantine_returns_other_results(self, jobs):
        results = run_cells(
            [_ValueCell(1), _CrashCell(), _ValueCell(3)],
            jobs=jobs,
            on_error="quarantine",
        )
        assert results[0] == 1 and results[2] == 3
        failure = results[1]
        assert isinstance(failure, CellFailure)
        assert failure.index == 1
        assert failure.error_type == "ValueError"
        assert failure.attempts == 1
        assert failure.as_dict()["error"] == "boom"

    def test_retries_recover_transient_failures_serial(self, tmp_path):
        cell = _FlakyCell(marker=str(tmp_path / "m"), fail_times=2)
        assert run_cells([cell], jobs=1, retries=2) == ["ok"]
        assert (tmp_path / "m").read_text() == "3"

    def test_retries_recover_transient_failures_in_pool(self, tmp_path):
        cell = _FlakyCell(marker=str(tmp_path / "m"), fail_times=1)
        assert run_cells([cell], jobs=2, retries=1) == ["ok"]

    def test_exhausted_retries_report_attempt_count(self, tmp_path):
        cell = _FlakyCell(marker=str(tmp_path / "m"), fail_times=5)
        (failure,) = run_cells(
            [cell], jobs=1, retries=1, on_error="quarantine"
        )
        assert isinstance(failure, CellFailure)
        assert failure.attempts == 2  # first run + one retry

    def test_failed_cells_are_never_cached(self, tmp_path):
        cache = RunCache(tmp_path)
        (failure,) = run_cells(
            [_CrashCell()], cache=cache, on_error="quarantine"
        )
        assert isinstance(failure, CellFailure)
        assert cache.stores == 0

    def test_quarantined_cell_recorded_in_session_manifest(self, tmp_path):
        with trace_session(tmp_path / "traces") as session:
            results = run_cells(
                [_ValueCell(1), _CrashCell()], on_error="quarantine"
            )
        assert results[0] == 1
        assert session.errors and session.errors[0]["error_type"] == "ValueError"
        (failed_run,) = [name for name in session.runs if "failed" in name]
        manifest = json.loads(
            (tmp_path / "traces" / failed_run / "manifest.json").read_text()
        )
        assert manifest["errors"] == [
            {
                "index": 1,
                "label": "crash-0",
                "error_type": "ValueError",
                "error": "boom",
                "attempts": 1,
            }
        ]

    def test_policy_flows_through_execution_context(self):
        with execution_context(on_error="quarantine", retries=0):
            (failure,) = run_cells([_CrashCell()])
        assert isinstance(failure, CellFailure)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"on_error": "explode"},
            {"timeout": 0.0},
            {"timeout": -1.0},
            {"retries": -1},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            run_cells([_ValueCell(1)], **kwargs)
        with pytest.raises(ConfigurationError):
            with execution_context(**kwargs):
                pass


class TestTimeouts:
    def test_timed_out_cell_quarantined_others_survive(self):
        started = time.monotonic()  # repro: ignore[RPR001] -- measures the engine's real timeout
        results = run_cells(
            [_ValueCell(1), _SleepCell(seconds=30.0)],
            jobs=2,
            timeout=0.5,
            on_error="quarantine",
        )
        elapsed = time.monotonic() - started  # repro: ignore[RPR001] -- measures the engine's real timeout
        assert results[0] == 1
        failure = results[1]
        assert isinstance(failure, CellFailure)
        assert failure.error_type == "TimeoutError"
        assert "wall-clock" in failure.error
        # The wedged worker must not be joined.
        assert elapsed < 10.0

    def test_timeout_raises_under_fail_fast(self):
        with pytest.raises(CellExecutionError) as excinfo:
            run_cells([_SleepCell(seconds=30.0)], jobs=2, timeout=0.5)
        assert isinstance(excinfo.value.__cause__, TimeoutError)

    def test_serial_execution_ignores_timeout(self):
        # Documented: a serial cell cannot be preempted from within its
        # own process, so the limit only applies to pools.
        assert run_cells([_ValueCell(5)], jobs=1, timeout=0.001) == [5]


class TestSuiteQuarantine:
    def test_suite_with_crashing_cells_completes(self, monkeypatch):
        # Sabotage one scheduler's runs; the suite must still return
        # every other cell's results and list the failures.
        import repro.experiments.runner as runner_module

        original = runner_module.run_single

        def sabotaged(name, specs, config, **kwargs):
            if name == "wf2q-e":
                raise RuntimeError("seeded cell crash")
            return original(name, specs, config, **kwargs)

        monkeypatch.setattr(runner_module, "run_single", sabotaged)
        result = run_suite(SMALL_PARAMS, schedulers=("wfq-e", "wf2q-e"))
        assert len(result.errors) == SMALL_PARAMS.num_experiments
        for record in result.errors:
            assert record["error_type"] == "RuntimeError"
            assert "wf2q-e" in record["label"]
        for record in result.p99:
            assert record["wfq-e"]  # healthy scheduler fully populated
            assert record["wf2q-e"] == {}  # quarantined: reads as NaN
        assert math.isnan(result.median_speedup("wf2q-e", "T1"))

    def test_clean_suite_has_no_errors(self):
        result = run_suite(SMALL_PARAMS, schedulers=("wfq-e",))
        assert result.errors == []
