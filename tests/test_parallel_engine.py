"""Tests for the parallel experiment engine (repro.parallel).

The load-bearing property is the determinism contract (DESIGN.md §10):
for any ``jobs`` and any cache state, results are numerically identical
to a serial, uncached run.  Latency p99 is NaN for tenants that complete
no requests at the scaled-down test durations, so comparisons here are
NaN-aware (``nan != nan`` would otherwise report false drift).
"""

import math
import pickle

import pytest

from repro.errors import ConfigurationError
from repro.experiments.expensive_requests import expensive_requests_config
from repro.experiments.runner import run_comparison
from repro.experiments.suite import SuiteParameters, run_suite
from repro.obs import clear_session, current_session, trace_session
from repro.parallel import (
    ExecutionContext,
    RunCache,
    RunSpec,
    current_execution,
    execution_context,
    run_cells,
)
from repro.workloads.synthetic import expensive_requests_population

SMALL_PARAMS = SuiteParameters(
    num_experiments=2,
    threads=(2, 4),
    replay_tenants=(2, 6),
    replay_speed=(0.5, 1.0),
    backlogged_tenants=(2, 4),
    expensive_tenants=(0, 2),
    unpredictable_tenants=(0, 2),
    duration=0.4,
    thread_rate=1000.0,
)


def small_config(schedulers=("wfq", "2dfq"), seed=0):
    return expensive_requests_config(
        schedulers=schedulers, num_threads=2, thread_rate=100.0,
        duration=1.0, seed=seed,
    )


def small_population():
    return expensive_requests_population(num_small=3, total=4)


def assert_p99_equal(a, b):
    """Compare nested p99 dicts treating NaN == NaN."""
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert left.keys() == right.keys()
        for scheduler in left:
            assert left[scheduler].keys() == right[scheduler].keys()
            for tenant, x in left[scheduler].items():
                y = right[scheduler][tenant]
                assert (math.isnan(x) and math.isnan(y)) or x == y, (
                    scheduler, tenant, x, y,
                )


class TestDeterminism:
    def test_run_comparison_parallel_matches_serial(self):
        config = small_config()
        serial = run_comparison(small_population(), config, jobs=1)
        fanned = run_comparison(small_population(), config, jobs=2)
        assert serial.runs.keys() == fanned.runs.keys()
        for name in serial.runs:
            assert pickle.dumps(serial[name].latencies) == pickle.dumps(
                fanned[name].latencies
            )
            assert pickle.dumps(serial[name].gini_values) == pickle.dumps(
                fanned[name].gini_values
            )

    def test_run_suite_jobs4_matches_serial(self):
        serial = run_suite(SMALL_PARAMS, schedulers=("wfq", "2dfq-e"))
        fanned = run_suite(
            SMALL_PARAMS, schedulers=("wfq", "2dfq-e"), jobs=4
        )
        assert serial.experiments == fanned.experiments
        assert_p99_equal(serial.p99, fanned.p99)

    def test_cached_rerun_matches_cold(self, tmp_path):
        cache = RunCache(tmp_path)
        config = small_config(schedulers=("wfq",))
        cold = run_comparison(small_population(), config, cache=cache)
        assert cache.stores == 1 and cache.hits == 0
        warm = run_comparison(small_population(), config, cache=cache)
        assert cache.hits == 1
        assert pickle.dumps(cold["wfq"].latencies) == pickle.dumps(
            warm["wfq"].latencies
        )

    def test_cache_shared_across_jobs_settings(self, tmp_path):
        """A cache warmed serially must hit when re-read with jobs > 1."""
        cache = RunCache(tmp_path)
        config = small_config()
        run_comparison(small_population(), config, jobs=1, cache=cache)
        before = cache.hits
        run_comparison(small_population(), config, jobs=2, cache=cache)
        assert cache.hits == before + len(config.schedulers)


class TestExecutionContext:
    def test_default_is_serial_uncached(self):
        ctx = current_execution()
        assert ctx.jobs == 1 and ctx.cache is None

    def test_context_sets_and_restores(self, tmp_path):
        cache = RunCache(tmp_path)
        with execution_context(jobs=3, cache=cache):
            assert current_execution() == ExecutionContext(3, cache)
            with execution_context(jobs=1):
                assert current_execution().jobs == 1
            assert current_execution().jobs == 3
        assert current_execution().jobs == 1

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            with execution_context(jobs=0):
                pass

    def test_context_drives_run_comparison(self, tmp_path):
        cache = RunCache(tmp_path)
        config = small_config(schedulers=("wfq",))
        with execution_context(jobs=2, cache=cache):
            run_comparison(small_population(), config)
        assert cache.stores == 1


class TestTraceSemantics:
    def test_trace_session_with_jobs_gt_1_raises(self, tmp_path):
        config = small_config(schedulers=("wfq",))
        with trace_session(tmp_path / "traces"):
            with pytest.raises(ConfigurationError, match="jobs"):
                run_comparison(small_population(), config, jobs=2)

    def test_trace_session_serial_still_traces(self, tmp_path):
        config = small_config(schedulers=("wfq",))
        with trace_session(tmp_path / "traces") as session:
            run_comparison(small_population(), config, jobs=1)
        assert len(session.runs) == 1

    def test_cache_hit_recorded_in_session_manifest(self, tmp_path):
        import json

        cache = RunCache(tmp_path / "cache")
        config = small_config(schedulers=("wfq",))
        run_comparison(small_population(), config, cache=cache)
        with trace_session(tmp_path / "traces") as session:
            run_comparison(small_population(), config, cache=cache)
        assert cache.hits == 1
        assert len(session.runs) == 1
        manifest = json.loads(
            (tmp_path / "traces" / session.runs[0] / "manifest.json").read_text()
        )
        assert manifest["cache"]["status"] == "hit"
        assert len(manifest["cache"]["key"]) == 64

    def test_clear_session(self, tmp_path):
        with trace_session(tmp_path):
            assert current_session() is not None
            clear_session()
            assert current_session() is None

    def test_workers_run_with_tracing_disabled(self, tmp_path):
        """Pool workers must never inherit the parent's trace session
        (fork copies module globals); run_cells clears it per cell."""
        from repro.parallel.engine import _run_cell

        class Probe:
            def execute(self):
                return current_session() is None

        with trace_session(tmp_path):
            assert _run_cell(Probe()) is True
        assert current_session() is None


class TestNoStateLeakage:
    """run_comparison must not mutate its inputs between scheduler runs:
    every run sees identical specs/config/trace (the old serial loop
    shared one materialized trace across runs, so any in-place mutation
    would leak from one scheduler into the next)."""

    def test_inputs_unchanged_by_run(self):
        config = small_config()
        specs = small_population()
        before = pickle.dumps((specs, config))
        run_comparison(specs, config)
        assert pickle.dumps((specs, config)) == before

    def test_back_to_back_runs_identical(self):
        config = small_config()
        first = run_comparison(small_population(), config)
        second = run_comparison(small_population(), config)
        for name in first.runs:
            assert pickle.dumps(first[name].latencies) == pickle.dumps(
                second[name].latencies
            )


class _ValueCell:
    """Picklable trivial cell for the merge-order test."""

    def __init__(self, value):
        self.value = value

    def label(self):
        return f"cell-{self.value}"

    def execute(self):
        return self.value


class TestRunCells:
    def test_results_merge_in_cell_order(self):
        cells = [_ValueCell(i) for i in range(8)]
        assert run_cells(cells, jobs=4) == list(range(8))
        assert run_cells(cells, jobs=1) == list(range(8))

    def test_worker_errors_propagate(self):
        config = small_config(schedulers=("no-such-scheduler",))
        with pytest.raises(Exception):
            run_cells(
                [
                    RunSpec(
                        scheduler="no-such-scheduler",
                        specs=tuple(small_population()),
                        config=config,
                    )
                ],
                jobs=2,
            )
