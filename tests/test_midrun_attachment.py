"""Regression tests for the epoch-anchored sampling grids.

The RPR103 dataflow rule surfaced a shared pre-existing hazard in three
periodic components: ``MetricsCollector``, ``FleetCollector`` and
``HealthMonitor`` all scheduled their first event at ``at(interval)``
-- handing a *duration* to the absolute-time parameter.  Attached to a
simulation whose clock had already advanced past one interval, that
asked the simulator to schedule an event in the past and raised
``SimulationError``.  The fix anchors each grid at the attach instant:
events now fire at ``epoch + k * interval``.  These tests pin both the
no-crash property and the anchored grid itself.
"""

from __future__ import annotations

import pytest

from repro.core.registry import make_scheduler
from repro.fleet import Fleet, FleetCollector, HealthMonitor
from repro.metrics import MetricsCollector
from repro.simulator.clock import Simulation
from repro.simulator.server import ThreadPoolServer
from repro.simulator.sources import BackloggedSource


def _server(sim: Simulation) -> ThreadPoolServer:
    scheduler = make_scheduler("wfq", num_threads=2, thread_rate=10.0)
    return ThreadPoolServer(
        sim, scheduler, num_threads=2, rate=10.0, refresh_interval=None
    )


def test_metrics_collector_attaches_mid_run() -> None:
    sim = Simulation()
    server = _server(sim)
    sim.run(until=0.5)  # the clock is already past several intervals

    collector = MetricsCollector(server, sample_interval=0.1)
    BackloggedSource(
        server, "A", lambda: ("x", 1.0), window=2, start_time=sim.now
    ).start()
    sim.run(until=1.5)

    series = collector.result().service_series("A")
    # The grid is anchored at the attach instant, not at t=0: first
    # sample one interval after attachment, then every interval.
    assert series.times[0] == pytest.approx(0.6)
    assert series.times[-1] == pytest.approx(1.5)
    deltas = series.times[1:] - series.times[:-1]
    assert deltas == pytest.approx([0.1] * len(deltas))


def test_fleet_collector_attaches_mid_run() -> None:
    sim = Simulation()
    servers = [_server(sim), _server(sim)]
    fleet = Fleet(sim, servers)
    sim.run(until=0.25)

    collector = FleetCollector(fleet, sample_interval=0.1)
    BackloggedSource(
        fleet, "A", lambda: ("x", 1.0), window=4, start_time=sim.now
    ).start()
    sim.run(until=1.0)

    series = collector.result().service_series("A")
    assert series.times[0] == pytest.approx(0.35)
    # The capacity timeline's initial point carries the attach epoch,
    # not a fabricated t=0 entry.
    assert collector.result().capacity_timeline[0][0] == pytest.approx(0.25)


def test_health_monitor_starts_mid_run() -> None:
    sim = Simulation()
    servers = [_server(sim)]
    fleet = Fleet(sim, servers, failover=None)  # no auto-started monitor
    sim.run(until=1.0)

    monitor = HealthMonitor(fleet, interval=0.05)
    monitor.start()  # previously: SimulationError (event in the past)
    sim.run(until=1.2)

    # Probes fire on the anchored grid 1.05, 1.10, ... -- one probe per
    # server per tick, and none retroactively before start().
    assert monitor.probes >= 3
    assert monitor.probes == monitor._ticks * len(fleet.servers)


def test_fresh_attachment_grid_is_unchanged() -> None:
    """Anchoring at t=0 degenerates to the original absolute grid, so
    pre-existing runs are bit-identical."""
    sim = Simulation()
    server = _server(sim)
    collector = MetricsCollector(server, sample_interval=0.1)
    BackloggedSource(server, "A", lambda: ("x", 1.0), window=2).start()
    sim.run(until=2.0)
    series = collector.result().service_series("A")
    assert series.times.size == 20
    assert series.times[0] == pytest.approx(0.1)
    assert series.times[-1] == pytest.approx(2.0)
