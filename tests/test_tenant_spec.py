"""Unit tests for TenantSpec."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.simulator.rng import make_rng
from repro.workloads import Backlogged, FixedCost, PoissonArrivals, TenantSpec


class TestValidation:
    def test_requires_apis(self):
        with pytest.raises(WorkloadError):
            TenantSpec(tenant_id="T", api_costs={})

    def test_rejects_unknown_weighted_apis(self):
        with pytest.raises(WorkloadError):
            TenantSpec(
                tenant_id="T",
                api_costs={"a": FixedCost(1.0)},
                api_weights={"b": 1.0},
            )

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(WorkloadError):
            TenantSpec(
                tenant_id="T", api_costs={"a": FixedCost(1.0)}, weight=0.0
            )

    def test_rejects_zero_sum_api_weights(self):
        spec = TenantSpec(
            tenant_id="T",
            api_costs={"a": FixedCost(1.0)},
            api_weights={"a": 0.0},
        )
        with pytest.raises(WorkloadError):
            spec.request_sampler(make_rng(0, "x"))


class TestSampling:
    def test_single_api_fast_path(self):
        spec = TenantSpec(tenant_id="T", api_costs={"a": FixedCost(3.0)})
        sampler = spec.request_sampler(make_rng(1, "t"))
        assert sampler() == ("a", 3.0)

    def test_api_mix_respects_weights(self):
        spec = TenantSpec(
            tenant_id="T",
            api_costs={"a": FixedCost(1.0), "b": FixedCost(2.0)},
            api_weights={"a": 0.8, "b": 0.2},
        )
        sampler = spec.request_sampler(make_rng(2, "t"))
        picks = [sampler()[0] for _ in range(3000)]
        assert picks.count("a") / len(picks) == pytest.approx(0.8, abs=0.03)

    def test_uniform_default_mix(self):
        spec = TenantSpec(
            tenant_id="T",
            api_costs={"a": FixedCost(1.0), "b": FixedCost(2.0)},
        )
        sampler = spec.request_sampler(make_rng(3, "t"))
        picks = [sampler()[0] for _ in range(2000)]
        assert picks.count("a") / len(picks) == pytest.approx(0.5, abs=0.05)

    def test_mean_cost(self):
        spec = TenantSpec(
            tenant_id="T",
            api_costs={"a": FixedCost(1.0), "b": FixedCost(3.0)},
            api_weights={"a": 0.5, "b": 0.5},
        )
        assert spec.mean_cost() == pytest.approx(2.0)

    def test_backlogged_property(self):
        closed = TenantSpec(
            tenant_id="T", api_costs={"a": FixedCost(1.0)},
            arrivals=Backlogged(),
        )
        open_loop = TenantSpec(
            tenant_id="T", api_costs={"a": FixedCost(1.0)},
            arrivals=PoissonArrivals(rate=1.0),
        )
        assert closed.backlogged and not open_loop.backlogged
