"""Span-builder tests: exact wait decomposition and HoL attribution.

The acceptance property (ISSUE 7): for every completed request, the sum
of its attributed blocking intervals equals its queueing delay, and
wait + service equals latency -- across all 8 registered schedulers on
the same driven workload.
"""

import heapq
import json

import pytest

from repro.core import make_scheduler
from repro.core.request import Request
from repro.obs import Tracer, build_spans, spans_from_jsonl
from repro.obs.spans import SpanSet
from repro.perf.hotpath import DEFAULT_SCHEDULERS
from repro.simulator.rng import make_rng


def drive_scheduler(scheduler_name, num_threads=3, horizon=40.0, seed=0):
    """Closed-loop sequencer over a mixed-cost tenant population.

    Mirrors the golden-trace driver: threads pick up work the moment
    they free, every dispatched request is replaced so tenants stay
    backlogged, completions are delivered in time order.  Costs are
    drawn per-request from a seeded per-tenant range so ties and
    orderings vary across schedulers.
    """
    scheduler = make_scheduler(scheduler_name, num_threads=num_threads)
    tracer = Tracer(f"spans-{scheduler_name}")
    scheduler.attach_tracer(tracer)
    rng = make_rng(seed, "spans", scheduler_name)
    cost_ranges = {"A": (0.5, 1.5), "B": (3.0, 5.0), "C": (0.2, 0.6), "D": (1.0, 2.5)}

    def enqueue(tenant, now):
        low, high = cost_ranges[tenant]
        cost = float(rng.uniform(low, high))
        scheduler.enqueue(Request(tenant_id=tenant, cost=cost, api="op"), now)

    for tenant in sorted(cost_ranges):
        enqueue(tenant, 0.0)
    free_heap = [(0.0, t) for t in range(num_threads)]
    heapq.heapify(free_heap)
    completions = []
    while free_heap:
        now, thread_id = heapq.heappop(free_heap)
        if now >= horizon:
            continue
        while completions and completions[0][0] <= now:
            end, _, done = heapq.heappop(completions)
            scheduler.complete(done, done.cost, end)
        request = scheduler.dequeue(thread_id, now)
        end = now + request.cost
        enqueue(request.tenant_id, now)
        heapq.heappush(completions, (end, request.seqno, request))
        heapq.heappush(free_heap, (end, thread_id))
    return tracer


class TestWaitDecompositionProperty:
    @pytest.mark.parametrize("scheduler_name", DEFAULT_SCHEDULERS)
    def test_decomposition_is_exact(self, scheduler_name):
        tracer = drive_scheduler(scheduler_name)
        spans = build_spans(tracer.events)
        completed = spans.completed()
        assert len(completed) > 20, "driver must complete a real workload"
        waited = 0
        for span in completed:
            # latency == wait + service, exactly.
            assert span.latency == pytest.approx(
                span.wait + span.service, abs=1e-9
            )
            # wait == sum of attributed blocking intervals, exactly.
            attributed = sum(b.duration for b in span.blocking)
            assert attributed == pytest.approx(span.wait, abs=1e-9)
            if span.blocking:
                waited += 1
                # The partition telescopes: contiguous, ordered, and
                # clipped to [enqueue, dispatch).
                intervals = span.blocking
                dispatch_t = span.attempts[-1].dispatch_t
                assert intervals[0].start == pytest.approx(span.enqueue_t)
                assert intervals[-1].end == pytest.approx(dispatch_t)
                for left, right in zip(intervals, intervals[1:]):
                    assert left.end == pytest.approx(right.start)
        assert waited > 0, "workload must include actual queueing"

    def test_blockers_ran_on_the_victims_thread(self):
        tracer = drive_scheduler("wfq")
        spans = build_spans(tracer.events)
        by_seqno = spans.by_seqno
        for span in spans.completed():
            thread = span.attempts[-1].thread
            for interval in span.blocking:
                assert interval.thread == thread
                if interval.kind == "running":
                    blocker = by_seqno[interval.blocker_seqno]
                    assert interval.blocker_tenant == blocker.tenant


class TestHeadOfLineAttribution:
    def test_small_request_waits_behind_expensive_one(self):
        """The paper's headline scenario, reconstructed from events: on
        one WFQ thread, A's small request arrives while B's expensive
        request occupies the worker and is blamed for the whole wait."""
        scheduler = make_scheduler("wfq", num_threads=1)
        tracer = Tracer("hol")
        scheduler.attach_tracer(tracer)
        big = Request(tenant_id="B", cost=10.0, api="op")
        scheduler.enqueue(big, 0.0)
        served = scheduler.dequeue(0, 0.0)
        assert served is big
        small = Request(tenant_id="A", cost=1.0, api="op")
        scheduler.enqueue(small, 0.5)
        scheduler.complete(big, big.cost, 10.0)
        assert scheduler.dequeue(0, 10.0) is small
        scheduler.complete(small, small.cost, 11.0)

        spans = build_spans(tracer.events)
        small_span = spans.by_seqno[small.seqno]
        assert small_span.wait == pytest.approx(9.5)
        (interval,) = small_span.blocking
        assert interval.kind == "running"
        assert interval.blocker_tenant == "B"
        assert interval.blocker_seqno == big.seqno
        assert interval.duration == pytest.approx(9.5)
        assert small_span.blocked_by_tenant() == {"B": pytest.approx(9.5)}
        (row,) = spans.hol_report()
        assert row["tenant"] == "B"
        assert row["blocked_seconds"] == pytest.approx(9.5)
        assert row["victim_requests"] == 1

    def test_hol_report_ignores_self_blocking(self):
        events = [
            {"kind": "enqueue", "t": 0.0, "tenant": "A", "seqno": 0, "cost": 2.0, "api": "x"},
            {"kind": "enqueue", "t": 0.0, "tenant": "A", "seqno": 1, "cost": 2.0, "api": "x"},
            {"kind": "dispatch", "t": 0.0, "tenant": "A", "seqno": 0, "thread": 0},
            {"kind": "complete", "t": 2.0, "tenant": "A", "seqno": 0},
            {"kind": "dispatch", "t": 2.0, "tenant": "A", "seqno": 1, "thread": 0},
            {"kind": "complete", "t": 4.0, "tenant": "A", "seqno": 1},
        ]
        spans = build_spans(events)
        # Request 1 did wait behind request 0 (attribution is recorded)...
        assert spans.by_seqno[1].blocked_by_tenant() == {"A": pytest.approx(2.0)}
        # ...but a tenant queueing behind itself is not cross-tenant HoL.
        assert spans.hol_report() == []


class TestLifecycleEdges:
    def test_idle_gap_becomes_idle_interval(self):
        events = [
            {"kind": "enqueue", "t": 0.0, "tenant": "A", "seqno": 0, "cost": 1.0, "api": "x"},
            # Thread 0 sits idle until 3.0 (a stall window), then runs it.
            {"kind": "dispatch", "t": 3.0, "tenant": "A", "seqno": 0, "thread": 0},
            {"kind": "complete", "t": 4.0, "tenant": "A", "seqno": 0},
        ]
        span = build_spans(events).by_seqno[0]
        (interval,) = span.blocking
        assert interval.kind == "idle"
        assert interval.duration == pytest.approx(3.0)
        assert span.wait == pytest.approx(3.0)
        assert span.latency == pytest.approx(4.0)

    def test_cancelled_while_queued(self):
        events = [
            {"kind": "enqueue", "t": 0.0, "tenant": "A", "seqno": 0, "cost": 1.0, "api": "x"},
            {"kind": "cancel", "t": 2.5, "tenant": "A", "seqno": 0, "was_running": False},
        ]
        span = build_spans(events).by_seqno[0]
        assert span.outcome == "cancelled"
        assert span.latency is None
        assert span.wait == pytest.approx(2.5)
        assert span.service == 0.0

    def test_crash_redispatch_builds_two_attempts(self):
        events = [
            {"kind": "enqueue", "t": 0.0, "tenant": "A", "seqno": 0, "cost": 2.0, "api": "x"},
            {"kind": "dispatch", "t": 0.0, "tenant": "A", "seqno": 0, "thread": 0},
            # Worker crash: the running attempt is cancelled and the
            # request re-enqueued (same seqno).
            {"kind": "cancel", "t": 1.0, "tenant": "A", "seqno": 0, "was_running": True},
            {"kind": "enqueue", "t": 1.0, "tenant": "A", "seqno": 0, "cost": 2.0, "api": "x"},
            {"kind": "dispatch", "t": 1.5, "tenant": "A", "seqno": 0, "thread": 1},
            {"kind": "complete", "t": 3.5, "tenant": "A", "seqno": 0},
        ]
        spans = build_spans(events)
        assert len(spans) == 1
        span = spans.by_seqno[0]
        assert len(span.attempts) == 2
        assert span.outcome == "completed"
        # Lost work counts as service; wait spans both attempts.
        assert span.service == pytest.approx(1.0 + 2.0)
        assert span.wait == pytest.approx(0.0 + 0.5)
        assert spans.summary()["redispatched"] == 1

    def test_mid_stream_events_for_unknown_seqnos_are_ignored(self):
        events = [
            {"kind": "dispatch", "t": 1.0, "tenant": "A", "seqno": 9, "thread": 0},
            {"kind": "complete", "t": 2.0, "tenant": "A", "seqno": 9},
        ]
        assert len(build_spans(events)) == 0


class TestSpanSetSurface:
    def test_summary_and_dict_shapes(self):
        tracer = drive_scheduler("2dfq", horizon=15.0)
        spans = build_spans(tracer.events)
        summary = spans.summary()
        assert summary["requests"] == len(spans)
        assert summary["completed"] == len(spans.completed())
        assert summary["total_service"] > 0
        record = spans.completed()[0].as_dict()
        assert {"tenant", "seqno", "outcome", "wait", "service", "latency",
                "blocking"} <= set(record)
        json.dumps(record)  # JSON-ready end to end

    def test_spans_from_jsonl_round_trip(self, tmp_path):
        from repro.obs import write_events_jsonl

        tracer = drive_scheduler("wf2q", horizon=10.0)
        path = write_events_jsonl(tracer.events, tmp_path / "events.jsonl")
        direct = build_spans(tracer.events)
        loaded = spans_from_jsonl(path)
        assert isinstance(loaded, SpanSet)
        assert len(loaded) == len(direct)
        for a, b in zip(direct, loaded):
            assert a.seqno == b.seqno
            assert a.wait == pytest.approx(b.wait)
            assert len(a.blocking) == len(b.blocking)
