"""Tests for the production and unpredictable experiment modules
(scaled far below bench size; these validate wiring and invariants,
not figure shapes -- the benchmarks assert shapes)."""

import numpy as np
import pytest

from repro.experiments.production import (
    fixed_cost_lag_ranges,
    lag_sigma_cdfs,
    production_config,
    production_specs,
    production_trace,
    run_production,
)
from repro.experiments.unpredictable import (
    _scrambled_trace,
    run_unpredictable,
    unpredictable_config,
)
from repro.workloads.arrivals import Backlogged, OpenLoopProcess
from repro.workloads.synthetic import FIXED_COST_IDS


class TestProductionSpecs:
    def test_population_composition(self):
        specs = production_specs(num_random=10, include_fixed=True, seed=0)
        ids = [s.tenant_id for s in specs]
        assert ids[:12] == [f"T{i}" for i in range(1, 13)]
        assert set(FIXED_COST_IDS) <= set(ids)
        assert sum(1 for t in ids if t.startswith("R")) == 10

    def test_named_modes(self):
        open_specs = production_specs(num_random=0, named_mode="open-loop")
        assert all(isinstance(s.arrivals, OpenLoopProcess) for s in open_specs)
        closed = production_specs(num_random=0, named_mode="backlogged")
        assert all(isinstance(s.arrivals, Backlogged) for s in closed)
        with pytest.raises(ValueError):
            production_specs(num_random=0, named_mode="bogus")

    def test_fixed_probes_follow_named_mode(self):
        open_specs = production_specs(
            num_random=0, include_fixed=True, named_mode="open-loop"
        )
        probes = [s for s in open_specs if s.tenant_id in FIXED_COST_IDS]
        assert all(isinstance(s.arrivals, OpenLoopProcess) for s in probes)


class TestProductionTrace:
    def test_thinning_targets_utilization(self):
        config = production_config(duration=3.0)
        specs = production_specs(num_random=60, seed=1)
        for util in (0.4, 0.8):
            trace = production_trace(specs, config, open_loop_utilization=util)
            total = sum(r.cost for r in trace)
            budget = util * config.capacity * config.duration
            assert total <= budget * 1.35  # heavy-tailed, so loose upper bound

    def test_named_tenants_never_thinned(self):
        config = production_config(duration=3.0)
        specs = production_specs(num_random=60, seed=1)
        full = production_trace(specs, config, open_loop_utilization=100.0)
        thin = production_trace(specs, config, open_loop_utilization=0.3)
        named_full = [r for r in full if not r.tenant.startswith("R")]
        named_thin = [r for r in thin if not r.tenant.startswith("R")]
        assert named_full == named_thin

    def test_trace_sorted(self):
        config = production_config(duration=2.0)
        specs = production_specs(num_random=20, seed=2)
        trace = production_trace(specs, config)
        times = [r.time for r in trace]
        assert times == sorted(times)


class TestProductionRun:
    @pytest.fixture(scope="class")
    def result(self):
        config = production_config(duration=2.0, num_threads=8)
        return run_production(
            num_random=20, include_fixed=True, config=config,
            named_mode="backlogged", open_loop_utilization=0.5,
        )

    def test_all_schedulers_ran(self, result):
        assert set(result.scheduler_names) == {"wfq", "wf2q", "2dfq"}

    def test_yardstick_tenants_served(self, result):
        for name, run in result.runs.items():
            assert run.service_series("T1").actual[-1] > 0, name
            assert run.service_series("t1").actual[-1] > 0, name

    def test_lag_cdfs_structure(self, result):
        cdfs = lag_sigma_cdfs(result)
        for name, cdf in cdfs.items():
            assert cdf.values.size > 10
            assert (np.diff(cdf.values) >= 0).all()
            assert cdf.freq[-1] == pytest.approx(1.0)

    def test_fixed_ranges_structure(self, result):
        ranges = fixed_cost_lag_ranges(result)
        for name, per_tenant in ranges.items():
            for tenant, (p1, p99) in per_tenant.items():
                assert p1 <= p99


class TestUnpredictable:
    def test_scramble_targets_only_random_tenants(self):
        config = unpredictable_config(duration=2.0, num_threads=8)
        specs = production_specs(num_random=20, seed=config.seed)
        base = _scrambled_trace(specs, config, 0.0, 1.0, 1.0)
        scrambled = _scrambled_trace(specs, config, 1.0, 1.0, 1.0)
        named_base = [r for r in base if r.tenant.startswith("T")]
        named_after = [r for r in scrambled if r.tenant.startswith("T")]
        assert named_base == named_after
        random_base = [r.cost for r in base if r.tenant.startswith("R")]
        random_after = [r.cost for r in scrambled if r.tenant.startswith("R")]
        assert random_base != random_after

    def test_zero_fraction_is_identity(self):
        config = unpredictable_config(duration=2.0, num_threads=8)
        specs = production_specs(num_random=10, seed=config.seed)
        a = _scrambled_trace(specs, config, 0.0, 1.0, 1.0)
        b = _scrambled_trace(specs, config, 0.0, 1.0, 1.0)
        assert a == b

    def test_run_produces_latencies_for_yardsticks(self):
        config = unpredictable_config(
            duration=2.0, num_threads=8, schedulers=("2dfq-e",)
        )
        result = run_unpredictable(
            0.5, num_random=15, config=config, named_mode="backlogged"
        )
        run = result["2dfq-e"]
        assert run.latency_stats("T1").count > 0

    def test_estimated_schedulers_configured(self):
        config = unpredictable_config(alpha=0.9, initial_estimate=123.0)
        for name in config.schedulers:
            kwargs = config.kwargs_for(name)
            assert kwargs["alpha"] == 0.9
            assert kwargs["initial_estimate"] == 123.0
