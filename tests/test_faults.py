"""Fault injection (repro.faults): plan DSL, injector, estimator faults.

Behavioral tests drive a real :class:`ThreadPoolServer` + scheduler
through a :class:`FaultInjector` and check the piecewise-progress
arithmetic, crash re-dispatch, deadline retry/abandon, and the summary
counts/trace events, all hand-derivable from the plan times.

The golden crash-trace test pins the *exact* event stream of a tiny
2-tenant 2DFQ run with one injected worker crash against
``tests/data/golden_2dfq_crash_trace.jsonl`` -- in particular the
re-dispatch ordering: cancel (with refund) then re-enqueue at the crash
instant, then a later dispatch of the same seqno.  Regenerate after an
*intentional* semantics change with::

    PYTHONPATH=src:tests python -c \
        "from test_faults import write_crash_golden; write_crash_golden()"
"""

import itertools
import json
import pickle
from pathlib import Path

import pytest

import repro.core.request as request_module
from repro.core import make_scheduler
from repro.core.request import Request, RequestPhase
from repro.errors import ConfigurationError
from repro.estimation.base import CostEstimator
from repro.experiments import ExperimentConfig, run_comparison
from repro.faults import (
    DeadlinePolicy,
    EstimatorFault,
    FaultInjector,
    FaultPlan,
    FaultyEstimator,
    WorkerCrash,
    WorkerSlowdown,
)
from repro.obs import Tracer
from repro.parallel.spec import canonicalize
from repro.simulator.clock import Simulation
from repro.simulator.server import ThreadPoolServer
from repro.workloads.arrivals import Backlogged
from repro.workloads.distributions import FixedCost
from repro.workloads.spec import TenantSpec

CRASH_GOLDEN = Path(__file__).parent / "data" / "golden_2dfq_crash_trace.jsonl"
CHAOS_PLAN = Path(__file__).parent / "data" / "chaos_plan.json"


def make_server(plan, workers=1, scheduler_name="2dfq", tracer=None):
    """A unit-rate pool with ``plan`` installed; simulation not yet run."""
    sim = Simulation()
    scheduler = make_scheduler(scheduler_name, num_threads=workers)
    server = ThreadPoolServer(
        sim, scheduler, num_threads=workers, rate=1.0, refresh_interval=None
    )
    if tracer is not None:
        scheduler.attach_tracer(tracer)
        server.attach_tracer(tracer)
    injector = FaultInjector(server, plan)
    injector.install()
    injector.wire_estimator(scheduler)
    return sim, scheduler, server, injector


class TestPlanDSL:
    def full_plan(self):
        return FaultPlan(
            slowdowns=(WorkerSlowdown(worker=0, start=1.0, end=2.0, factor=0.5),),
            crashes=(WorkerCrash(worker=1, at=0.5, restart_at=3.0),),
            deadlines=(
                DeadlinePolicy(deadline=1.0, max_retries=2, tenants=("A", "B")),
            ),
            estimator_faults=(
                EstimatorFault(start=0.0, end=1.0, mode="bias", bias=2.0),
            ),
            seed=7,
        )

    def test_json_round_trip(self):
        plan = self.full_plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_file_round_trip(self, tmp_path):
        plan = self.full_plan()
        path = tmp_path / "plan.json"
        plan.dump(path)
        assert FaultPlan.load(path) == plan

    def test_dict_coercion_in_constructor(self):
        # The ExperimentConfig __post_init__ path: plans arriving as
        # plain dicts (e.g. out of JSON) coerce to the frozen classes.
        plan = FaultPlan(
            crashes=({"worker": 0, "at": 1.0},),
            slowdowns=({"worker": 1, "start": 0.0, "end": 1.0, "factor": 0.0},),
        )
        assert plan.crashes[0] == WorkerCrash(worker=0, at=1.0)
        assert plan.slowdowns[0].factor == 0.0

    def test_is_empty_and_policy_for(self):
        assert FaultPlan().is_empty
        plan = self.full_plan()
        assert not plan.is_empty
        assert plan.policy_for("A").deadline == 1.0
        assert plan.policy_for("Z") is None
        catch_all = FaultPlan(deadlines=(DeadlinePolicy(deadline=2.0),))
        assert catch_all.policy_for("anyone").deadline == 2.0

    @pytest.mark.parametrize(
        "build",
        [
            lambda: WorkerSlowdown(worker=-1, start=0.0, end=1.0, factor=1.0),
            lambda: WorkerSlowdown(worker=0, start=1.0, end=1.0, factor=1.0),
            lambda: WorkerSlowdown(worker=0, start=0.0, end=1.0, factor=-0.1),
            lambda: WorkerCrash(worker=0, at=-1.0),
            lambda: WorkerCrash(worker=0, at=2.0, restart_at=1.0),
            lambda: DeadlinePolicy(deadline=0.0),
            lambda: DeadlinePolicy(deadline=1.0, max_retries=-1),
            lambda: DeadlinePolicy(deadline=1.0, growth=0.5),
            lambda: EstimatorFault(start=0.0, end=1.0, mode="wat"),
            lambda: EstimatorFault(start=0.0, end=1.0, bias=0.0),
            lambda: EstimatorFault(start=0.0, end=1.0, fallback=-1.0),
            lambda: FaultPlan(crashes=("not-a-crash",)),
        ],
    )
    def test_invalid_plans_rejected(self, build):
        with pytest.raises(ConfigurationError):
            build()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict({"slowdown": []})  # typo'd key

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            FaultPlan.load(tmp_path / "nope.json")

    def test_committed_chaos_plan_loads(self):
        # The canned plan the CI chaos job feeds to --faults.
        plan = FaultPlan.load(CHAOS_PLAN)
        assert not plan.is_empty
        assert plan.crashes and plan.slowdowns


class TestWorkerFaults:
    def test_slowdown_stretches_completion_piecewise(self):
        # 0.2s at speed 1, then 0.5s at speed 0.5 (0.25 units), leaving
        # 0.55 units at full speed: completion at 0.2+0.5+0.55 = 1.25.
        plan = FaultPlan(
            slowdowns=(WorkerSlowdown(worker=0, start=0.2, end=0.7, factor=0.5),)
        )
        sim, _, server, injector = make_server(plan)
        request = Request(tenant_id="A", cost=1.0)
        sim.at(0.0, server.submit, request)
        sim.run(until=5.0)
        assert request.completion_time == pytest.approx(1.25)
        assert server.completed_requests == 1
        assert injector.counts["slowdowns"] == 1

    def test_stall_freezes_progress(self):
        # 0.2 units done, frozen for 0.5s, remaining 0.8: done at 1.5.
        plan = FaultPlan(
            slowdowns=(WorkerSlowdown(worker=0, start=0.2, end=0.7, factor=0.0),)
        )
        sim, _, server, _ = make_server(plan)
        request = Request(tenant_id="A", cost=1.0)
        sim.at(0.0, server.submit, request)
        sim.run(until=0.5)
        # Mid-stall the request is alive but making no progress.
        assert server.service_received("A") == pytest.approx(0.2)
        sim.run(until=5.0)
        assert request.completion_time == pytest.approx(1.5)

    def test_stalled_worker_still_accepts_work(self):
        # A stall is degradation, not death: dispatch lands a request on
        # the stalled worker, which holds it frozen until recovery.
        plan = FaultPlan(
            slowdowns=(WorkerSlowdown(worker=0, start=0.0, end=1.0, factor=0.0),)
        )
        sim, _, server, _ = make_server(plan)
        request = Request(tenant_id="A", cost=1.0)
        sim.at(0.5, server.submit, request)
        sim.run(until=5.0)
        assert request.completion_time == pytest.approx(2.0)

    def test_crash_redispatch_restarts_from_scratch(self):
        # Crash at 0.5 loses 0.5 units of progress; the re-enqueued
        # request waits for the restart at 1.0 and runs in full: done at
        # 2.0, still exactly one completion.
        plan = FaultPlan(crashes=(WorkerCrash(worker=0, at=0.5, restart_at=1.0),))
        sim, _, server, injector = make_server(plan)
        request = Request(tenant_id="A", cost=1.0)
        sim.at(0.0, server.submit, request)
        sim.run(until=5.0)
        assert request.completion_time == pytest.approx(2.0)
        assert server.completed_requests == 1
        assert server.completed_cost("A") == pytest.approx(1.0)
        assert injector.counts["crashes"] == 1
        assert injector.counts["restarts"] == 1

    def test_crash_without_redispatch_drops_request(self):
        plan = FaultPlan(
            crashes=(
                WorkerCrash(worker=0, at=0.5, restart_at=1.0, redispatch=False),
            )
        )
        sim, _, server, _ = make_server(plan)
        request = Request(tenant_id="A", cost=1.0)
        sim.at(0.0, server.submit, request)
        sim.run(until=5.0)
        assert request.phase == RequestPhase.CANCELLED
        assert server.completed_requests == 0

    def test_crash_moves_work_to_surviving_worker(self):
        # Two workers; the crashed worker's request re-enters the
        # scheduler and runs on the survivor once it frees up.
        plan = FaultPlan(crashes=(WorkerCrash(worker=1, at=0.25),))
        sim, _, server, _ = make_server(plan, workers=2)
        a = Request(tenant_id="A", cost=1.0)
        b = Request(tenant_id="B", cost=1.0)
        sim.at(0.0, server.submit, a)  # descending dispatch: worker 1
        sim.at(0.0, server.submit, b)  # worker 0
        sim.run(until=5.0)
        assert server.completed_requests == 2
        # B ran [0,1] on worker 0; A restarted there afterwards.
        assert b.completion_time == pytest.approx(1.0)
        assert a.completion_time == pytest.approx(2.0)

    def test_plan_for_larger_pool_skips_missing_workers(self):
        plan = FaultPlan(
            slowdowns=(WorkerSlowdown(worker=5, start=0.1, end=0.2, factor=0.0),),
            crashes=(WorkerCrash(worker=9, at=0.1),),
        )
        sim, _, server, injector = make_server(plan)
        request = Request(tenant_id="A", cost=1.0)
        sim.at(0.0, server.submit, request)
        sim.run(until=5.0)
        assert request.completion_time == pytest.approx(1.0)
        assert injector.counts["crashes"] == 0

    def test_fault_events_traced(self):
        tracer = Tracer("faulted")
        plan = FaultPlan(
            slowdowns=(WorkerSlowdown(worker=0, start=0.2, end=0.4, factor=0.5),),
            crashes=(WorkerCrash(worker=0, at=0.6, restart_at=0.8),),
        )
        sim, _, server, _ = make_server(plan, tracer=tracer)
        sim.at(0.0, server.submit, Request(tenant_id="A", cost=2.0))
        sim.run(until=5.0)
        faults = [e.data["fault"] for e in tracer.of_kind("fault")]
        assert faults == [
            "slowdown_begin",
            "slowdown_end",
            "worker_crash",
            "worker_restart",
        ]
        snap = tracer.registry.snapshot()
        assert snap["faults.worker_crash"] == 1
        assert snap["faults.slowdown_begin"] == 1


class TestDeadlines:
    def policy(self, **overrides):
        base = dict(
            deadline=1.1, max_retries=1, backoff=0.5, growth=2.0,
            jitter=0.0, tenants=("T",),
        )
        base.update(overrides)
        return FaultPlan(deadlines=(DeadlinePolicy(**base),))

    def test_queued_expiry_retries_and_succeeds(self):
        # R2 misses its 1.1s deadline stuck behind a 1.2s request,
        # retries 0.5s later (backoff * growth^0, no jitter) and runs on
        # the by-then-idle worker: completion at 1.6 + 1.0 = 2.6.
        sim, _, server, injector = make_server(self.policy())
        slow = Request(tenant_id="SLOW", cost=1.2)
        timed = Request(tenant_id="T", cost=1.0)
        sim.at(0.0, server.submit, slow)
        sim.at(0.0, server.submit, timed)
        sim.run(until=10.0)
        assert timed.completion_time == pytest.approx(2.6)
        assert server.completed_requests == 2
        assert injector.counts["deadline_expiries"] == 1
        assert injector.counts["retries"] == 1
        assert injector.counts["abandoned"] == 0

    def test_exhausted_retries_abandon_and_notify_source(self):
        class FakeSource:
            completed = ()

            def on_request_complete(self, request):
                self.completed += (request,)

        source = FakeSource()
        sim, _, server, injector = make_server(self.policy(max_retries=0))
        slow = Request(tenant_id="SLOW", cost=5.0)
        timed = Request(tenant_id="T", cost=1.0, source=source)
        sim.at(0.0, server.submit, slow)
        sim.at(0.0, server.submit, timed)
        sim.run(until=10.0)
        assert timed.phase == RequestPhase.CANCELLED
        assert source.completed == (timed,)  # closed loop keeps moving
        assert injector.counts["abandoned"] == 1
        assert injector.counts["retries"] == 0
        assert server.completed_requests == 1  # only SLOW

    def test_running_request_torn_off_worker(self):
        tracer = Tracer("deadline")
        sim, _, server, injector = make_server(
            self.policy(max_retries=0), tracer=tracer
        )
        hog = Request(tenant_id="T", cost=5.0)
        nxt = Request(tenant_id="SLOW", cost=1.0)
        sim.at(0.0, server.submit, hog)
        sim.at(0.0, server.submit, nxt)
        sim.run(until=10.0)
        # The hog was aborted mid-run at 1.1; the freed worker picked up
        # the queued request immediately.
        assert hog.phase == RequestPhase.CANCELLED
        assert nxt.completion_time == pytest.approx(2.1)
        (expired,) = [
            e for e in tracer.of_kind("fault")
            if e.data["fault"] == "deadline_expired"
        ]
        assert expired.data["was_running"] is True
        assert expired.tenant == "T"
        assert injector.counts["deadline_expiries"] == 1

    def test_completion_before_deadline_is_not_expired(self):
        sim, _, server, injector = make_server(self.policy())
        quick = Request(tenant_id="T", cost=0.5)
        sim.at(0.0, server.submit, quick)
        sim.run(until=10.0)
        assert quick.completion_time == pytest.approx(0.5)
        assert injector.counts["deadline_expiries"] == 0

    def test_policy_only_applies_to_listed_tenants(self):
        sim, _, server, injector = make_server(self.policy(tenants=("OTHER",)))
        slow = Request(tenant_id="SLOW", cost=1.2)
        timed = Request(tenant_id="T", cost=1.0)
        sim.at(0.0, server.submit, slow)
        sim.at(0.0, server.submit, timed)
        sim.run(until=10.0)
        assert injector.counts["deadline_expiries"] == 0
        assert timed.completion_time == pytest.approx(2.2)


class StubEstimator(CostEstimator):
    name = "stub"

    def __init__(self, value=2.0):
        self.value = value
        self.observed = []

    def estimate(self, request):
        return self.value

    def observe(self, request, actual_cost):
        self.observed.append(actual_cost)


class TestFaultyEstimator:
    def wrap(self, faults, inner=None):
        self.now = 0.0
        inner = inner if inner is not None else StubEstimator()
        return inner, FaultyEstimator(inner, faults, clock=lambda: self.now)

    def test_transparent_outside_windows(self):
        inner, faulty = self.wrap(
            (EstimatorFault(start=1.0, end=2.0, mode="bias", bias=10.0),)
        )
        request = Request(tenant_id="A", cost=1.0)
        assert faulty.estimate(request) == 2.0
        faulty.observe(request, 3.0)
        assert inner.observed == [3.0]

    def test_bias_window_skews_but_keeps_learning(self):
        inner, faulty = self.wrap(
            (EstimatorFault(start=1.0, end=2.0, mode="bias", bias=10.0),)
        )
        request = Request(tenant_id="A", cost=1.0)
        self.now = 1.5
        assert faulty.estimate(request) == pytest.approx(20.0)
        faulty.observe(request, 3.0)
        assert inner.observed == [3.0]  # bias does not lose measurements

    def test_outage_pins_to_explicit_fallback_and_drops_observations(self):
        inner, faulty = self.wrap(
            (EstimatorFault(start=1.0, end=2.0, mode="outage", fallback=9.0),)
        )
        request = Request(tenant_id="A", cost=1.0)
        self.now = 1.5
        assert faulty.estimate(request) == 9.0
        faulty.observe(request, 3.0)
        assert inner.observed == []  # lost during the outage
        assert faulty.dropped_observations == 1
        self.now = 2.0  # window closed: transparent again
        assert faulty.estimate(request) == 2.0

    def test_outage_default_fallback_is_frozen_max_seen(self):
        inner, faulty = self.wrap(
            (EstimatorFault(start=1.0, end=2.0, mode="outage"),)
        )
        request = Request(tenant_id="A", cost=1.0)
        faulty.observe(request, 7.0)  # before the window: passes through
        self.now = 1.2
        assert faulty.estimate(request) == 7.0  # max(seen=7, inner=2)
        faulty.observe(request, 50.0)  # dropped, and must not move the pin
        assert faulty.estimate(request) == 7.0
        assert inner.observed == [7.0]

    def test_reset_clears_fault_state(self):
        _, faulty = self.wrap((EstimatorFault(start=0.0, end=1.0),))
        faulty.observe(Request(tenant_id="A", cost=1.0), 5.0)
        faulty.reset()
        assert faulty.dropped_observations == 0
        assert faulty._frozen == {}

    def test_injector_wires_estimated_scheduler(self):
        plan = FaultPlan(estimator_faults=(EstimatorFault(start=0.5, end=1.0),))
        sim, scheduler, _, _ = make_server(plan, scheduler_name="2dfq-e")
        assert isinstance(scheduler.estimator, FaultyEstimator)

    def test_injector_skips_schedulers_without_estimator(self):
        plan = FaultPlan(estimator_faults=(EstimatorFault(start=0.5, end=1.0),))
        sim, scheduler, _, _ = make_server(plan, scheduler_name="fifo")
        assert not hasattr(scheduler, "estimator")


class TestDifferential:
    def specs(self):
        return [
            TenantSpec(
                tenant_id=t,
                api_costs={"op": FixedCost(c)},
                arrivals=Backlogged(window=2),
            )
            for t, c in (("A", 1.0), ("B", 4.0))
        ]

    def config(self, **overrides):
        base = dict(
            name="faults-diff",
            schedulers=("2dfq", "wfq"),
            num_threads=2,
            thread_rate=1.0,
            duration=3.0,
        )
        base.update(overrides)
        return ExperimentConfig(**base)

    def test_empty_plan_is_bit_identical_to_no_plan(self):
        # The tentpole's hot-path contract: an inert plan must not
        # perturb a single float anywhere in the run.
        plain = run_comparison(self.specs(), self.config())
        inert = run_comparison(
            self.specs(), self.config(fault_plan=FaultPlan())
        )
        for name in ("2dfq", "wfq"):
            assert pickle.dumps(plain[name]) == pickle.dumps(inert[name])

    def test_faulted_run_differs_and_completes(self):
        plan = FaultPlan(
            slowdowns=(WorkerSlowdown(worker=0, start=0.5, end=2.0, factor=0.0),)
        )
        plain = run_comparison(self.specs(), self.config())
        faulted = run_comparison(
            self.specs(), self.config(fault_plan=plan)
        )
        assert pickle.dumps(plain["2dfq"]) != pickle.dumps(faulted["2dfq"])

    def test_fault_plan_changes_cache_key_material(self):
        # DESIGN.md §10 purity contract: faulted and fault-free configs
        # canonicalize differently, so they can never collide in the
        # content-addressed run cache.
        plan = FaultPlan(crashes=(WorkerCrash(worker=0, at=1.0),))
        assert canonicalize(self.config()) != canonicalize(
            self.config(fault_plan=plan)
        )

    def test_config_coerces_plan_dicts(self):
        config = self.config(
            fault_plan={"crashes": [{"worker": 0, "at": 1.0}]}
        )
        assert isinstance(config.fault_plan, FaultPlan)
        assert config.fault_plan.crashes[0].worker == 0


def run_crash_example():
    """The tiny 2-tenant 2DFQ run behind the golden crash trace.

    Two unit-rate workers, refresh charging off, A sends three unit-cost
    requests and B two cost-4 requests, all at t=0.  Worker 0 crashes at
    t=1.5 mid-request and restarts at t=4.0.  Caller must reset
    ``repro.core.request._SEQUENCE`` first so seqnos are stable.
    """
    sim = Simulation()
    scheduler = make_scheduler("2dfq", num_threads=2)
    server = ThreadPoolServer(
        sim, scheduler, num_threads=2, rate=1.0, refresh_interval=None
    )
    tracer = Tracer("golden-crash")
    scheduler.attach_tracer(tracer)
    server.attach_tracer(tracer)
    plan = FaultPlan(crashes=(WorkerCrash(worker=0, at=1.5, restart_at=4.0),))
    injector = FaultInjector(server, plan)
    injector.install()
    for tenant, cost in (("A", 1.0), ("B", 4.0), ("A", 1.0), ("B", 4.0), ("A", 1.0)):
        sim.at(0.0, server.submit, Request(tenant_id=tenant, cost=cost))
    sim.run(until=30.0)
    return tracer, server, injector


def write_crash_golden():
    """Regenerate the committed crash trace (intentional changes only)."""
    request_module._SEQUENCE = itertools.count()
    tracer, _, _ = run_crash_example()
    CRASH_GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    with CRASH_GOLDEN.open("w") as fh:
        for event in tracer.events:
            fh.write(json.dumps(event.as_dict()) + "\n")


class TestGoldenCrashTrace:
    @pytest.fixture(autouse=True)
    def _fresh_seqnos(self, monkeypatch):
        monkeypatch.setattr(request_module, "_SEQUENCE", itertools.count())

    def test_matches_committed_golden_file(self):
        tracer, _, _ = run_crash_example()
        produced = [event.as_dict() for event in tracer.events]
        with CRASH_GOLDEN.open() as fh:
            expected = [json.loads(line) for line in fh]
        assert len(produced) == len(expected)
        for i, (got, want) in enumerate(zip(produced, expected)):
            assert got == want, f"event {i} diverged"

    def test_redispatch_ordering_pinned(self):
        # The crash must read, in stream order: fault(worker_crash
        # naming the interrupted seqno) after a cancel (the refund) and
        # a fresh enqueue of the same seqno at the crash instant, and
        # the request must later dispatch again and complete exactly
        # once.
        tracer, server, injector = run_crash_example()
        (crash,) = [
            e for e in tracer.of_kind("fault")
            if e.data["fault"] == "worker_crash"
        ]
        seqno = crash.data["interrupted"]
        assert seqno is not None and crash.t == pytest.approx(1.5)
        kinds_at_crash = [
            e.kind
            for e in tracer
            if e.t == crash.t and e.data.get("seqno") == seqno
        ]
        # Refund (the vt_update), cancel record, then the re-enqueue.
        assert kinds_at_crash == ["vt_update", "cancel", "enqueue"]
        (refund,) = [
            e for e in tracer.of_kind("vt_update")
            if e.t == crash.t and e.data.get("seqno") == seqno
        ]
        assert refund.data["reason"] == "cancel_refund"
        dispatches = [
            e.t for e in tracer.of_kind("dispatch")
            if e.data["seqno"] == seqno
        ]
        assert len(dispatches) == 2  # original + re-dispatch
        assert dispatches[1] >= crash.t
        completions = [
            e for e in tracer.of_kind("complete")
            if e.data["seqno"] == seqno
        ]
        assert len(completions) == 1
        # Nothing was lost or double-counted across the crash.
        assert server.completed_requests == 5
        assert server.completed_cost("A") == pytest.approx(3.0)
        assert server.completed_cost("B") == pytest.approx(8.0)
        assert injector.counts == {
            "slowdowns": 0,
            "crashes": 1,
            "restarts": 1,
            "deadline_expiries": 0,
            "retries": 0,
            "abandoned": 0,
        }

    def test_golden_covers_fault_and_cancel_kinds(self):
        tracer, _, _ = run_crash_example()
        kinds = {event.kind for event in tracer}
        assert {"enqueue", "select", "dispatch", "complete",
                "cancel", "fault", "vt_update"} <= kinds
