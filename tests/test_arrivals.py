"""Unit tests for arrival processes."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.simulator.rng import make_rng
from repro.workloads.arrivals import (
    Backlogged,
    DecayingBurstArrivals,
    OnOffArrivals,
    PoissonArrivals,
)


@pytest.fixture
def rng():
    return make_rng(7, "arrival-tests")


class TestBacklogged:
    def test_mean_rate_infinite(self):
        assert Backlogged().mean_rate() == float("inf")

    def test_window_validation(self):
        with pytest.raises(WorkloadError):
            Backlogged(window=0)


class TestPoisson:
    def test_rate_matches(self, rng):
        times = PoissonArrivals(rate=100.0).arrival_times(rng, 20.0)
        assert len(times) == pytest.approx(2000, rel=0.1)

    def test_sorted_and_bounded(self, rng):
        times = PoissonArrivals(rate=50.0).arrival_times(rng, 5.0)
        assert (np.diff(times) >= 0).all()
        assert times.min() >= 0.0
        assert times.max() < 5.0

    def test_start_time_offset(self, rng):
        times = PoissonArrivals(rate=50.0, start_time=3.0).arrival_times(rng, 5.0)
        assert times.min() >= 3.0

    def test_empty_window(self, rng):
        times = PoissonArrivals(rate=50.0, start_time=6.0).arrival_times(rng, 5.0)
        assert len(times) == 0

    def test_exponential_gaps(self, rng):
        times = PoissonArrivals(rate=100.0).arrival_times(rng, 50.0)
        gaps = np.diff(times)
        # Memoryless: CV of exponential gaps is 1.
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, abs=0.1)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            PoissonArrivals(rate=0.0)


class TestDecayingBurst:
    def test_rate_decays(self, rng):
        process = DecayingBurstArrivals(peak_rate=500.0, tau=2.0)
        times = process.arrival_times(rng, 10.0)
        early = (times < 2.0).sum()
        late = ((times >= 8.0)).sum()
        assert early > 4 * max(late, 1)

    def test_floor_rate_persists(self, rng):
        process = DecayingBurstArrivals(peak_rate=500.0, tau=0.5, floor_rate=50.0)
        times = process.arrival_times(rng, 20.0)
        tail = ((times >= 10.0) & (times < 20.0)).sum()
        assert tail == pytest.approx(500, rel=0.25)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            DecayingBurstArrivals(peak_rate=0.0, tau=1.0)
        with pytest.raises(WorkloadError):
            DecayingBurstArrivals(peak_rate=10.0, tau=1.0, floor_rate=20.0)


class TestOnOff:
    def test_has_bursts_and_lulls(self, rng):
        process = OnOffArrivals(burst_rate=200.0, mean_on=1.0, mean_off=1.0)
        times = process.arrival_times(rng, 30.0)
        # Bin into 100ms windows: both busy and silent windows exist.
        bins = np.histogram(times, bins=np.arange(0.0, 30.0, 0.1))[0]
        assert (bins == 0).sum() > 20
        assert (bins >= 10).sum() > 20

    def test_starts_in_burst(self, rng):
        process = OnOffArrivals(burst_rate=100.0, mean_on=5.0, mean_off=5.0)
        times = process.arrival_times(rng, 4.0)
        assert len(times) > 0  # short windows always see the opening burst

    def test_mean_rate_duty_cycle(self):
        process = OnOffArrivals(burst_rate=100.0, mean_on=1.0, mean_off=3.0)
        assert process.mean_rate() == pytest.approx(25.0)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            OnOffArrivals(burst_rate=0.0, mean_on=1.0, mean_off=1.0)
