"""Unit tests for the fair-queuing virtual clock."""

import pytest

from repro.core.virtual_time import VirtualClock
from repro.errors import ConfigurationError, SchedulerError


class TestConstruction:
    def test_requires_positive_capacity(self):
        with pytest.raises(ConfigurationError):
            VirtualClock(0.0)
        with pytest.raises(ConfigurationError):
            VirtualClock(-5.0)

    def test_initial_state(self):
        clock = VirtualClock(100.0)
        assert clock.value == 0.0
        assert clock.active_weight == 0.0
        assert clock.rate == 0.0


class TestAdvance:
    def test_frozen_without_active_tenants(self):
        clock = VirtualClock(100.0)
        assert clock.advance(10.0) == 0.0

    def test_paper_rate_example_two_threads(self):
        # Paper §2: 4 tenants sharing two 100-unit/s threads -> dv/dt = 50.
        clock = VirtualClock(200.0)
        for _ in range(4):
            clock.add_weight(1.0, 0.0)
        assert clock.rate == pytest.approx(50.0)
        assert clock.advance(1.0) == pytest.approx(50.0)

    def test_paper_rate_example_one_thread(self):
        # 4 tenants sharing one 100-unit/s thread -> dv/dt = 25.
        clock = VirtualClock(100.0)
        for _ in range(4):
            clock.add_weight(1.0, 0.0)
        assert clock.advance(2.0) == pytest.approx(50.0)

    def test_rate_changes_with_active_set(self):
        clock = VirtualClock(100.0)
        clock.add_weight(1.0, 0.0)
        clock.advance(1.0)  # v = 100
        clock.add_weight(1.0, 1.0)
        clock.advance(2.0)  # +50
        assert clock.value == pytest.approx(150.0)
        clock.remove_weight(1.0, 2.0)
        clock.advance(3.0)  # +100
        assert clock.value == pytest.approx(250.0)

    def test_weighted_tenants(self):
        clock = VirtualClock(100.0)
        clock.add_weight(3.0, 0.0)
        clock.add_weight(1.0, 0.0)
        assert clock.rate == pytest.approx(25.0)

    def test_backwards_time_rejected(self):
        clock = VirtualClock(10.0)
        clock.advance(5.0)
        with pytest.raises(SchedulerError):
            clock.advance(4.0)

    def test_small_backwards_jitter_tolerated(self):
        clock = VirtualClock(10.0)
        clock.advance(5.0)
        clock.advance(5.0 - 1e-13)  # float noise must not raise


class TestWeightAccounting:
    def test_negative_weight_rejected(self):
        clock = VirtualClock(10.0)
        with pytest.raises(ConfigurationError):
            clock.add_weight(0.0, 0.0)

    def test_over_removal_rejected(self):
        clock = VirtualClock(10.0)
        clock.add_weight(1.0, 0.0)
        clock.remove_weight(1.0, 0.0)
        with pytest.raises(SchedulerError):
            clock.remove_weight(1.0, 0.0)

    def test_float_residue_snapped_to_zero(self):
        clock = VirtualClock(10.0)
        for _ in range(10):
            clock.add_weight(0.1, 0.0)
        for _ in range(10):
            clock.remove_weight(0.1, 0.0)
        assert clock.active_weight == 0.0
        assert clock.rate == 0.0


class TestJump:
    def test_jump_forward_only(self):
        clock = VirtualClock(10.0)
        clock.jump_to(5.0)
        assert clock.value == 5.0
        clock.jump_to(3.0)
        assert clock.value == 5.0
