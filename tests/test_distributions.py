"""Unit tests for cost distributions."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulator.rng import make_rng
from repro.workloads.distributions import (
    FixedCost,
    LogNormalCost,
    LogUniformCost,
    MixtureCost,
    NormalCost,
)


@pytest.fixture
def rng():
    return make_rng(42, "dist-tests")


class TestFixedCost:
    def test_always_same(self, rng):
        d = FixedCost(256.0)
        assert all(d.sample(rng) == 256.0 for _ in range(5))
        assert d.mean() == 256.0
        assert (d.sample_many(rng, 10) == 256.0).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FixedCost(0.0)


class TestNormalCost:
    def test_moments(self, rng):
        d = NormalCost(1000.0, 100.0)
        samples = d.sample_many(rng, 4000)
        assert samples.mean() == pytest.approx(1000.0, rel=0.02)
        assert samples.std() == pytest.approx(100.0, rel=0.1)

    def test_floor_truncation(self, rng):
        d = NormalCost(1.0, 10.0, floor=0.5)
        samples = d.sample_many(rng, 1000)
        assert samples.min() >= 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NormalCost(-1.0, 1.0)
        with pytest.raises(ConfigurationError):
            NormalCost(1.0, -1.0)


class TestLogNormalCost:
    def test_median_parameterization(self, rng):
        d = LogNormalCost(1000.0, 0.5)
        samples = d.sample_many(rng, 5000)
        assert np.median(samples) == pytest.approx(1000.0, rel=0.05)

    def test_sigma_decades_controls_spread(self, rng):
        tight = LogNormalCost(1000.0, 0.1).sample_many(rng, 3000)
        wide = LogNormalCost(1000.0, 1.0).sample_many(rng, 3000)
        assert np.log10(tight).std() == pytest.approx(0.1, rel=0.1)
        assert np.log10(wide).std() == pytest.approx(1.0, rel=0.1)

    def test_bounds_clip(self, rng):
        d = LogNormalCost(1000.0, 2.0, low=100.0, high=1e6)
        samples = d.sample_many(rng, 2000)
        assert samples.min() >= 100.0
        assert samples.max() <= 1e6
        assert d.sample(rng) >= 100.0

    def test_mean_formula(self):
        d = LogNormalCost(1000.0, 0.3)
        sigma = 0.3 * np.log(10.0)
        assert d.mean() == pytest.approx(1000.0 * np.exp(sigma**2 / 2))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LogNormalCost(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            LogNormalCost(1.0, -1.0)
        with pytest.raises(ConfigurationError):
            LogNormalCost(1.0, 1.0, low=10.0, high=1.0)


class TestLogUniformCost:
    def test_bounds(self, rng):
        d = LogUniformCost(10.0, 1000.0)
        samples = d.sample_many(rng, 2000)
        assert samples.min() >= 10.0
        assert samples.max() <= 1000.0

    def test_log_uniformity(self, rng):
        d = LogUniformCost(10.0, 1000.0)
        samples = np.log10(d.sample_many(rng, 5000))
        # Each decade gets ~half the samples.
        first_decade = ((samples >= 1.0) & (samples < 2.0)).mean()
        assert first_decade == pytest.approx(0.5, abs=0.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LogUniformCost(10.0, 5.0)
        with pytest.raises(ConfigurationError):
            LogUniformCost(0.0, 5.0)


class TestMixtureCost:
    def test_component_weights_respected(self, rng):
        d = MixtureCost([FixedCost(1.0), FixedCost(1000.0)], [0.9, 0.1])
        samples = d.sample_many(rng, 5000)
        assert (samples == 1000.0).mean() == pytest.approx(0.1, abs=0.02)

    def test_bimodal_shape_like_api_g(self, rng):
        """The 'usually cheap, occasionally very expensive' shape of
        API G (Figure 2a): p50 cheap, p99+ several decades higher."""
        d = MixtureCost(
            [LogNormalCost(1.5e3, 0.3), LogNormalCost(1.2e6, 0.4)], [0.93, 0.07]
        )
        samples = d.sample_many(rng, 8000)
        assert np.median(samples) < 3e3
        assert np.percentile(samples, 99.5) > 1e5

    def test_mean_is_weighted(self):
        d = MixtureCost([FixedCost(1.0), FixedCost(3.0)], [0.5, 0.5])
        assert d.mean() == pytest.approx(2.0)

    def test_scalar_sampling_matches(self, rng):
        d = MixtureCost([FixedCost(1.0), FixedCost(2.0)], [0.5, 0.5])
        values = {d.sample(rng) for _ in range(50)}
        assert values <= {1.0, 2.0}
        assert len(values) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MixtureCost([], [])
        with pytest.raises(ConfigurationError):
            MixtureCost([FixedCost(1.0)], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            MixtureCost([FixedCost(1.0)], [-1.0])
