"""Basic contract tests run against every scheduler implementation."""

import pytest

from repro.core import make_scheduler, scheduler_names
from repro.errors import ConfigurationError, SchedulerError

from conftest import SchedulerHarness, make_request

ALL_SCHEDULERS = scheduler_names()


@pytest.mark.parametrize("name", ALL_SCHEDULERS)
class TestSchedulerContract:
    def test_empty_dequeue_returns_none(self, name):
        s = make_scheduler(name, num_threads=2)
        assert s.dequeue(0, 0.0) is None

    def test_enqueue_dequeue_roundtrip(self, name):
        s = make_scheduler(name, num_threads=2)
        r = make_request("A", 5.0)
        s.enqueue(r, 0.0)
        assert s.backlog == 1
        out = s.dequeue(0, 0.0)
        assert out is r
        assert s.backlog == 0
        assert out.thread_id == 0
        assert out.dispatch_time == 0.0

    def test_complete_lifecycle(self, name):
        s = make_scheduler(name, num_threads=1)
        r = make_request("A", 5.0)
        s.enqueue(r, 0.0)
        out = s.dequeue(0, 0.0)
        s.complete(out, 5.0, 5.0)
        assert s.completed_count == 1
        assert out.phase == "done"

    def test_fifo_within_tenant(self, name):
        s = make_scheduler(name, num_threads=1)
        first = make_request("A", 1.0)
        second = make_request("A", 1.0)
        s.enqueue(first, 0.0)
        s.enqueue(second, 0.0)
        assert s.dequeue(0, 0.0) is first

    def test_invalid_thread_index(self, name):
        s = make_scheduler(name, num_threads=2)
        s.enqueue(make_request("A", 1.0), 0.0)
        with pytest.raises(SchedulerError):
            s.dequeue(2, 0.0)
        with pytest.raises(SchedulerError):
            s.dequeue(-1, 0.0)

    def test_work_conservation(self, name):
        """Whenever requests are queued, every thread can get one."""
        s = make_scheduler(name, num_threads=4)
        for i in range(8):
            s.enqueue(make_request(f"T{i % 3}", 10.0 ** (i % 4)), 0.0)
        got = [s.dequeue(i, 0.0) for i in range(4)]
        assert all(r is not None for r in got)
        assert s.backlog == 4

    def test_backlog_counts(self, name):
        s = make_scheduler(name, num_threads=2)
        for i in range(5):
            s.enqueue(make_request(f"T{i}", 1.0), 0.0)
        assert s.backlog == 5
        s.dequeue(0, 0.0)
        s.dequeue(1, 0.0)
        assert s.backlog == 3

    def test_construction_validation(self, name):
        with pytest.raises(ConfigurationError):
            make_scheduler(name, num_threads=0)
        with pytest.raises(ConfigurationError):
            make_scheduler(name, num_threads=2, thread_rate=-1.0)

    def test_long_run_fairness_two_tenants(self, name):
        """Over a long horizon, two backlogged equal-weight tenants with
        different request sizes receive (roughly) equal service under
        every fair scheduler; FIFO and round-robin are exempt -- they
        are the paper's negative baselines."""
        if name in ("fifo", "round-robin"):
            pytest.skip("cost-oblivious baseline: not resource-fair")
        s = make_scheduler(name, num_threads=2)
        harness = SchedulerHarness(s, {"small": 1.0, "big": 10.0})
        harness.run(400.0)
        service = harness.service_by_tenant(horizon=360.0)
        ratio = service["small"] / service["big"]
        assert 0.75 < ratio < 1.35, f"{name}: unfair ratio {ratio}"


class TestRegistry:
    def test_unknown_scheduler(self):
        with pytest.raises(KeyError, match="unknown scheduler"):
            make_scheduler("bogus", num_threads=1)

    def test_names_cover_paper_algorithms(self):
        names = set(scheduler_names())
        for required in ("wfq", "wf2q", "msf2q", "sfq", "drr", "2dfq",
                         "wfq-e", "wf2q-e", "2dfq-e", "fifo", "wf2q+"):
            assert required in names

    def test_estimated_variants_use_right_estimators(self):
        assert make_scheduler("wfq-e", num_threads=1).estimator.name == "ema"
        assert make_scheduler("wf2q-e", num_threads=1).estimator.name == "ema"
        assert (
            make_scheduler("2dfq-e", num_threads=1).estimator.name == "pessimistic"
        )
        assert make_scheduler("2dfq", num_threads=1).estimator.name == "oracle"

    def test_alpha_passthrough(self):
        s = make_scheduler("2dfq-e", num_threads=1, alpha=0.9)
        assert s.estimator.alpha == 0.9
