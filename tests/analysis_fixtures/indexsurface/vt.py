"""RPR022 fixture: indexed-selection pairing below the framework root.

Every ``dequeue`` override here references ``self._trace`` so the
fixture stays silent under RPR021 -- the violations are RPR022's alone.
"""


class VirtualTimeScheduler:
    """Framework root (by name): default spec off, indexed hook a stub."""

    def _index_spec(self):
        return None

    def _select_indexed(self, thread_id, vnow):
        raise NotImplementedError

    def dequeue(self, thread_id, now):
        if self._trace is not None:
            self._trace.dispatch(now)
        return None

    def dequeue_batch(self, thread_ids, now):
        return [self.dequeue(thread_id, now) for thread_id in thread_ids]


class IndexedScheduler(VirtualTimeScheduler):
    """Compliant: spec paired with a concrete indexed selection."""

    def _index_spec(self):
        return {"finish": True}

    def _select_indexed(self, thread_id, vnow):
        return None


class InheritedIndexScheduler(IndexedScheduler):
    """Compliant: ``_select_indexed`` found further up the base chain."""

    def _index_spec(self):
        return {"finish": True, "start": True}


class HalfIndexedScheduler(VirtualTimeScheduler):
    """Violation: advertises a spec, inherits only the root's stub."""

    def _index_spec(self):  # line 46: RPR022 (no _select_indexed)
        return {"finish": True}


class CustomDequeueScheduler(VirtualTimeScheduler):
    """Violation: new dequeue policy, stale inherited batch path."""

    def dequeue(self, thread_id, now):  # line 53: RPR022 (no dequeue_batch)
        if self._trace is not None:
            self._trace.dispatch(now)
        return "different policy"


class PairedDequeueScheduler(VirtualTimeScheduler):
    """Compliant: the dequeue override ships its batch counterpart."""

    def dequeue(self, thread_id, now):
        if self._trace is not None:
            self._trace.dispatch(now)
        return "policy"

    def dequeue_batch(self, thread_ids, now):
        return [self.dequeue(thread_id, now) for thread_id in thread_ids]


class OutsideFramework:
    """Not below the root: free to define half a surface."""

    def _index_spec(self):
        return {"finish": True}

    def dequeue(self, thread_id, now):
        return None
