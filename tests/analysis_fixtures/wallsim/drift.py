"""RPR111 fixture: host-clock-derived values flowing into sim state.

RPR001 flags the *call sites* (those findings are filtered out by the
tests); RPR111 follows the *value*, including through arithmetic that
launders the wall_time dimension away -- the taint bit is sticky.
"""

from __future__ import annotations

import time

from repro.units import SimTime


def noop() -> None:
    pass


class DriftingClock:
    """Syncs simulated time to the host clock (never do this)."""

    def __init__(self) -> None:
        self.now: SimTime = 0.0

    def sync(self) -> None:
        self.now = time.time()  # line 26: direct host read into sim state

    def launder(self) -> None:
        host = time.monotonic()
        skew = host * 0.5 + 1.0
        self.now = skew  # line 31: taint survives the arithmetic


def schedule_from_host(sim: object) -> None:
    deadline = time.perf_counter() + 1.0
    sim.at(deadline, noop)  # line 36: host time into the event queue


def host_timestamp() -> SimTime:
    return time.time()  # line 40: host read returned as sim time


def fine(sim: object, delay: float) -> None:
    sim.at(sim.now + delay, noop)  # sim clock in, sim clock out
    started = time.perf_counter()
    elapsed = time.perf_counter() - started  # host deltas stay host-side
    if elapsed < 0.0:
        raise ValueError("unreachable")
