"""RPR111 fixture package: host-clock taint reaching simulated state."""
