"""RPR010 fixture: float equality inside a `core` package."""


def compare(a: object, b: object) -> bool:
    return a.start_tag == b.finish_tag  # line 5: tag equality


def literal(x: float) -> bool:
    return x != 0.0  # line 9: != against a float literal


def division(n: int, d: int, total: float) -> bool:
    return n / d == total  # line 13: true division is float-valued


def fine(a: object, b: object) -> bool:
    # Ordering comparisons and integer equality are allowed.
    return a.start_tag < b.finish_tag or a.seqno == b.seqno
