"""Same comparisons outside a `core` package: RPR010 must stay silent."""


def compare(a: object, b: object) -> bool:
    return a.start_tag == b.finish_tag


def literal(x: float) -> bool:
    return x != 0.0
