"""RPR030 fixture: runtime asserts (stripped by `python -O`)."""


def checked(x: int) -> int:
    assert x > 0, "positive only"  # line 5
    return x


def fine(x: int) -> int:
    if x <= 0:
        raise ValueError("positive only")
    return x
