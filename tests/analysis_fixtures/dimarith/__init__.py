"""RPR101 fixture package: cross-dimension additive arithmetic."""
