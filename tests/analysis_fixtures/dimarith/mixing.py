"""RPR101 fixture: additive arithmetic across incompatible dimensions.

Every violation lives in its own function so the pinned line numbers
stay independent; ``fine()`` exercises the legal units algebra the rule
must *not* flag.
"""

from __future__ import annotations

from repro.units import Cost, Duration, Rate, SimTime, VirtualTime, Weight


def tag_plus_clock(tag: VirtualTime, now: SimTime) -> float:
    return tag + now  # line 14: virtual axis + sim clock


def cost_minus_elapsed(cost: Cost, elapsed: Duration) -> float:
    return cost - elapsed  # line 18: work units - seconds


def weight_mod_capacity(weight: Weight, capacity: Rate) -> float:
    return weight % capacity  # line 22: share % rate


def accumulate_badly(total: Cost, tag: VirtualTime) -> float:
    total += tag  # line 26: augmented assignment conflicts too
    return total


def fine(
    now: SimTime, delay: Duration, cost: Cost, rate: Rate, weight: Weight
) -> VirtualTime:
    deadline = now + delay  # point + length: a later timestamp
    window = deadline - now  # point - point: a duration
    service: Cost = rate * window  # rate * duration composes to cost
    backlog = (service + cost) / rate  # cost / rate: a duration
    drained = now + backlog  # and durations shift timestamps
    if drained < now:
        raise ValueError("unreachable")
    return cost / weight  # Figure 7: the virtual-time conversion
