"""RPR110 fixture package: RNG taint reaching dispatch order."""
