"""RPR110 fixture: seeded-RNG draws reaching ordering-sensitive
scheduler state.

The sink set is scoped to scheduler classes: ``ArrivalProcess`` below
does the *same* writes outside that scope and must stay clean, because
workload randomness (arrival gaps, request costs) is the legitimate use
of the seeded streams.
"""

from __future__ import annotations

from heapq import heappush

from repro.core.base import Scheduler  # resolved by name only
from repro.simulator.rng import make_rng


class JitteredScheduler(Scheduler):
    """Deliberately couples dispatch order to RNG stream consumption."""

    def tie_break(self, base: float, seed: int) -> None:
        rng = make_rng(seed)
        jitter = rng.random()
        self.start_tag = base + jitter  # line 24: tainted tag write

    def push(self, base: float, seed: int) -> None:
        rng = make_rng(seed)
        heappush(self._heap, (base + rng.random(), self))  # line 28: heap key

    def prefer(self, other_tag: float, seed: int) -> bool:
        rng = make_rng(seed)
        return other_tag < rng.random()  # line 32: comparison tie-break


class ArrivalProcess:
    """Workload randomness outside scheduler scope: all of this is fine."""

    def next_gap(self, seed: int) -> float:
        rng = make_rng(seed)
        return rng.exponential(1.0)

    def stamp(self, seed: int) -> None:
        rng = make_rng(seed)
        self.start_tag = rng.random()  # not a scheduler: no finding
