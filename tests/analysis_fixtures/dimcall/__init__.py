"""RPR103 fixture package: dimension lost at annotated boundaries."""
