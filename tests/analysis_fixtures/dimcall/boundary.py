"""RPR103 fixture: concrete dimension mismatches at annotated boundaries.

The centerpiece is the epoch-anchoring bug this rule was built to
catch: ``sim.at(interval, ...)`` hands a *duration* to the absolute
``sim_time`` parameter, which schedules the first sample in the past
for any component attached after t=0.
"""

from __future__ import annotations

from repro.units import Duration, SimTime, VirtualTime


class PeriodicProbe:
    """Schedules itself with a bare interval -- the classic bug."""

    def __init__(self, sim: object, interval: Duration) -> None:
        self._sim = sim
        self._interval: Duration = interval

    def start(self) -> None:
        self._sim.at(self._interval, self.start)  # line 22: duration -> at()

    def reset(self, start_time: SimTime) -> None:
        self._sim.at(start_time, self.start)  # exact match: fine

    def restart(self) -> None:
        self.reset(self._interval)  # line 28: duration -> own method summary

    def start_anchored(self, epoch: SimTime) -> None:
        self._sim.at(epoch + self._interval, self.start)  # anchored: fine
        self._sim.after(self._interval, self.start)  # relative API: fine


def tag_as_deadline(tag: VirtualTime) -> SimTime:
    return tag  # line 36: virtual tag returned as a sim timestamp


def tag_as_span(tag: VirtualTime) -> float:
    span: Duration = tag  # line 40: virtual tag bound to a duration slot
    return span


class TagHolder:
    """Writes a timestamp into a declared virtual-time attribute."""

    def __init__(self, tag: VirtualTime) -> None:
        self.start_tag: VirtualTime = tag

    def clobber(self, now: SimTime) -> None:
        self.start_tag = now  # line 51: sim clock into a virtual tag
