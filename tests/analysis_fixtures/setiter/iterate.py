"""RPR012 fixture: iteration over set-typed expressions."""


def over_literal() -> None:
    for tenant in {"a", "b", "c"}:  # line 5: set literal
        print(tenant)


def over_call(names: list) -> list:
    return [n for n in set(names)]  # line 10: set() in comprehension


def over_frozenset(names: list) -> None:
    for n in frozenset(names):  # line 14: frozenset() call
        print(n)


def fine(names: list, table: dict) -> None:
    # sorted() materializes a deterministic order; dicts iterate in
    # insertion order by language guarantee.
    for n in sorted(set(names)):
        print(n)
    for k in table:
        print(k)
