"""Suppression-mechanics fixture for RPR000."""


def silenced(x: int) -> int:
    assert x > 0  # repro: ignore[RPR030] -- consumed suppression
    return x


def unused(x: int) -> int:
    return x + 1  # repro: ignore[RPR030] -- silences nothing


def malformed(x: int) -> int:
    return x + 2  # repro: ignore -- no code list


def unknown(x: int) -> int:
    return x + 3  # repro: ignore[RPR999] -- no such rule


def filtered(x: int) -> int:
    return x + 4  # repro: ignore[RPR001] -- catalogue rule, off under select
