"""Two non-conforming schedulers for RPR020."""

from .scheduler import Scheduler


class NoDequeueScheduler(Scheduler):  # line 6: dequeue stays abstract
    name = "no-dequeue"

    def enqueue(self, request, now):
        self.backlog.append(request)


class StubCancelScheduler(Scheduler):  # line 13: cancel degraded to a stub
    name = "stub-cancel"

    def enqueue(self, request, now):
        self.backlog.append(request)

    def dequeue(self, thread_id, now):
        return None

    def cancel(self, request, now):
        raise NotImplementedError
