"""A conforming scheduler: concrete enqueue + dequeue."""

from .scheduler import Scheduler


class GoodScheduler(Scheduler):
    name = "good"

    def enqueue(self, request, now):
        self.backlog.append(request)

    def dequeue(self, thread_id, now):
        return self.backlog.pop(0) if self.backlog else None
