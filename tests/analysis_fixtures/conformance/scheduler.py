"""RPR020 fixture: a miniature scheduler class hierarchy."""

from abc import ABC, abstractmethod


class Scheduler(ABC):
    """Abstract surface: enqueue/dequeue abstract, rest concrete."""

    name = "scheduler"

    @abstractmethod
    def enqueue(self, request, now):
        """Admit a request."""

    @abstractmethod
    def dequeue(self, thread_id, now):
        """Pick the next request."""

    def refresh(self, request, usage, now):
        request.reported_usage += usage

    def complete(self, request, usage, now):
        request.reported_usage += usage

    def cancel(self, request, now):
        return True
