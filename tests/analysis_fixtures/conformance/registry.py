"""The registration site RPR020 reads."""

from .bad import NoDequeueScheduler, StubCancelScheduler
from .good import GoodScheduler

SCHEDULER_CLASSES = {  # line 6
    cls.name: cls
    for cls in (
        GoodScheduler,
        NoDequeueScheduler,
        StubCancelScheduler,
        GhostScheduler,  # noqa: F821 -- deliberately undefined anywhere
    )
}
