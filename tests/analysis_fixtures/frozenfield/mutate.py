"""RPR011 fixture: reassigning frozen Request identity fields."""


def rewrite_cost(request: object) -> None:
    request.cost = 5.0  # line 5: plain assign


def bump_seqno(req: object) -> None:
    req.seqno += 1  # line 9: augmented assign


def retag_head(state: object) -> None:
    state.queue[0].tenant_id = "evil"  # line 13: queue-head store


def annotated(old_request: object) -> None:
    old_request.api: str = "other"  # line 17: annotated assign


def fine(request: object, now: float) -> None:
    # Lifecycle fields are intentionally mutable.
    request.dispatch_time = now
    request.reported_usage += 0.5
