"""RPR021 fixture: hook overrides below VirtualTimeScheduler."""


class VirtualTimeScheduler:
    """Instrumented framework root (by name, as in repro.core)."""

    def enqueue(self, request, now):
        trace = self._trace
        if trace is not None:
            trace.enqueue(now)

    def complete(self, request, usage, now):
        trace = self._trace
        if trace is not None:
            trace.complete(now)

    def cancel(self, request, now):
        trace = self._trace
        if trace is not None:
            trace.cancel(now)
        return True


class SilentScheduler(VirtualTimeScheduler):
    def complete(self, request, usage, now):  # line 25: drops the event
        request.reported_usage += usage


class PoliteScheduler(VirtualTimeScheduler):
    def complete(self, request, usage, now):
        # Defers to the instrumented base implementation: compliant.
        super().complete(request, usage, now)

    def cancel(self, request, now):
        # Emits through the guarded idiom itself: compliant.
        trace = self._trace
        if trace is not None:
            trace.cancel(now)
        return True


class Unrelated:
    def complete(self, request, usage, now):
        # Not in the VirtualTimeScheduler family: rule must stay silent.
        request.reported_usage += usage
