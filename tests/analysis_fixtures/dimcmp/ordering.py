"""RPR102 fixture: ordering comparisons across incompatible dimensions.

A virtual-time tag never orders against a sim timestamp -- the axes are
unrelated no matter how close the floats happen to be.
"""

from __future__ import annotations

from repro.units import Cost, Duration, Rate, SimTime, VirtualTime, Weight


def tag_before_clock(tag: VirtualTime, now: SimTime) -> bool:
    return tag < now  # line 13: virtual axis vs sim clock


def cost_exceeds_delay(cost: Cost, delay: Duration) -> bool:
    return cost >= delay  # line 17: work units vs seconds


def share_equals_rate(weight: Weight, capacity: Rate) -> bool:
    return weight == capacity  # line 21: equality is ordered too


def chained(now: SimTime, tag: VirtualTime, other: VirtualTime) -> bool:
    return now < tag < other  # line 25: first link crosses axes


def fine(
    now: SimTime,
    deadline: SimTime,
    delay: Duration,
    tag: VirtualTime,
    other: VirtualTime,
) -> bool:
    if now + delay >= deadline:  # timestamp vs timestamp
        return tag <= other  # tag vs tag on the virtual axis
    return delay > 0.0  # dimensionless literals always compare
