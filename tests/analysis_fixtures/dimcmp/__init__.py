"""RPR102 fixture package: cross-dimension ordering comparisons."""
