"""RPR002 fixture: stdlib random + numpy global RNG (never imported)."""

import random  # line 3: stdlib random import
from random import choice  # line 4: from-import

import numpy as np


def draw() -> float:
    return np.random.random()  # line 10: module-level global-state fn


def shuffle(items: list) -> None:
    np.random.shuffle(items)  # line 14: another global-state fn


def construct() -> object:
    return np.random.default_rng(42)  # line 18: ctor outside simulator/rng


def fine(rng: "np.random.Generator") -> float:
    # Drawing from an injected Generator is the sanctioned pattern;
    # the annotation above is a class reference, not a call.
    return float(rng.random())
