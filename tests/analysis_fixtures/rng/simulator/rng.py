"""The carve-out module: generator construction is allowed here only."""

import numpy as np


def make_rng(seed: int) -> object:
    return np.random.default_rng(np.random.SeedSequence(seed))
