"""RPR001 fixture: every flavour of wall-clock read (never imported)."""

import time
import time as t
from datetime import datetime, date


def direct() -> float:
    return time.time()  # line 9: plain module call


def aliased() -> float:
    return t.perf_counter()  # line 13: through an import alias


def from_import() -> object:
    return datetime.now()  # line 17: from-imported class method


def date_today() -> object:
    return date.today()  # line 21: date.today suffix match


def fine() -> float:
    # Arithmetic on simulated timestamps is not a clock read.
    return 1.0 + 2.0


def lookalike(update: object, candidate: object) -> None:
    # Receivers whose names merely *end with* a clock suffix are not
    # clock reads: the suffix match is anchored on a dotted boundary.
    update.today()  # type: ignore[attr-defined]
    candidate.today()  # type: ignore[attr-defined]
