"""The runtime invariant watchdog (repro.validate).

Mutation tests: deliberately broken scheduler subclasses must be caught
by :class:`ValidatingScheduler` with the right violation code, full
event context, and an ``invariant`` trace event through repro.obs.  A
clean scheduler driven through a full simulated run must produce zero
violations -- and, results-wise, the watchdog must be invisible.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import make_scheduler
from repro.core.request import Request
from repro.core.twodfq import TwoDFQScheduler
from repro.errors import InvariantViolation
from repro.experiments import ExperimentConfig, run_comparison
from repro.obs import Tracer
from repro.validate import ValidatingScheduler, env_validate
from repro.workloads.distributions import FixedCost
from repro.workloads.arrivals import Backlogged
from repro.workloads.spec import TenantSpec


# -- deliberately broken schedulers (the mutants) ----------------------------


class OvercountingScheduler(TwoDFQScheduler):
    """Forgets that it already counted: backlog runs away."""

    def enqueue(self, request, now):
        super().enqueue(request, now)
        self._size += 1  # the seeded bug


class LazyScheduler(TwoDFQScheduler):
    """Refuses work while requests are queued (not work conserving)."""

    def dequeue(self, thread_id, now):
        return None


class DoubleDispatchScheduler(TwoDFQScheduler):
    """Hands the same request out twice."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._again = None

    def dequeue(self, thread_id, now):
        if self._again is not None:
            request, self._again = self._again, None
            return request
        request = super().dequeue(thread_id, now)
        self._again = request
        return request


class ShortchargingScheduler(TwoDFQScheduler):
    """Completes requests without reconciling the full cost."""

    def complete(self, request, usage, now):
        super().complete(request, usage, now)
        request.reported_usage = request.cost * 0.5  # the seeded bug


def drive_two(scheduler, now=0.0):
    a = Request(tenant_id="A", cost=1.0)
    b = Request(tenant_id="B", cost=4.0)
    scheduler.enqueue(a, now)
    scheduler.enqueue(b, now)
    return a, b


class TestMutants:
    def test_overcounting_caught_as_backlog_consistency(self):
        watched = ValidatingScheduler(OvercountingScheduler(num_threads=1))
        with pytest.raises(InvariantViolation) as excinfo:
            watched.enqueue(Request(tenant_id="A", cost=1.0), 0.0)
        assert excinfo.value.code == "backlog-consistency"
        assert excinfo.value.context["op"] == "enqueue"
        assert excinfo.value.context["tenant"] == "A"

    def test_lazy_scheduler_caught_as_work_conservation(self):
        watched = ValidatingScheduler(LazyScheduler(num_threads=1))
        drive_two(watched)
        with pytest.raises(InvariantViolation) as excinfo:
            watched.dequeue(0, 0.0)
        assert excinfo.value.code == "work-conservation"
        assert excinfo.value.context["thread"] == 0

    def test_double_dispatch_caught_as_duplicate(self):
        watched = ValidatingScheduler(DoubleDispatchScheduler(num_threads=2))
        drive_two(watched)
        first = watched.dequeue(0, 0.0)
        assert first is not None
        with pytest.raises(InvariantViolation) as excinfo:
            watched.dequeue(1, 0.0)
        assert excinfo.value.code == "no-duplicate-requests"
        assert excinfo.value.context["seqno"] == first.seqno

    def test_shortcharging_caught_as_charge_reconciliation(self):
        watched = ValidatingScheduler(ShortchargingScheduler(num_threads=1))
        a, _ = drive_two(watched)
        request = watched.dequeue(0, 0.0)
        with pytest.raises(InvariantViolation) as excinfo:
            watched.complete(request, request.cost, 1.0)
        assert excinfo.value.code == "charge-reconciliation"

    def test_foreign_complete_caught_as_lost_request(self):
        inner = TwoDFQScheduler(num_threads=1)
        watched = ValidatingScheduler(inner)
        drive_two(watched)
        watched.dequeue(0, 0.0)
        never_dispatched = Request(tenant_id="A", cost=1.0)
        never_dispatched.phase = never_dispatched.phase  # untouched
        with pytest.raises(InvariantViolation) as excinfo:
            watched.refresh(never_dispatched, 0.5, 0.5)
        assert excinfo.value.code == "no-lost-requests"

    def test_non_strict_records_and_reports_via_obs(self):
        # strict=False: violations collect instead of raising, and each
        # one lands in the trace stream with its context.
        watched = ValidatingScheduler(
            OvercountingScheduler(num_threads=1), strict=False
        )
        tracer = Tracer("mutant-run")
        watched.attach_tracer(tracer)
        watched.enqueue(Request(tenant_id="A", cost=1.0), 0.0)
        assert len(watched.violations) == 1
        record = watched.violations[0]
        assert record["code"] == "backlog-consistency"
        (event,) = tracer.of_kind("invariant")
        assert event.data["code"] == "backlog-consistency"
        assert event.data["op"] == "enqueue"
        assert event.tenant == "A"
        assert tracer.registry.snapshot()["validate.violations"] == 1
        summary = watched.summary()
        assert summary["violations"] == 1
        assert summary["codes"] == ["backlog-consistency"]
        assert summary["strict"] is False


class TestCleanRuns:
    def test_watchdog_clean_on_every_scheduler(self):
        from repro.core import scheduler_names

        for name in scheduler_names():
            watched = ValidatingScheduler(
                make_scheduler(name, num_threads=2), audit_interval=1
            )
            requests = [
                Request(tenant_id=t, cost=c)
                for t, c in (("A", 1.0), ("B", 4.0), ("A", 2.0), ("C", 0.5))
            ]
            for r in requests:
                watched.enqueue(r, 0.0)
            watched.cancel(requests[2], 0.0)
            now = 0.0
            running = [watched.dequeue(0, now), watched.dequeue(1, now)]
            watched.refresh(running[0], 0.25, 0.25)
            for r in running:
                now += r.cost
                watched.complete(r, r.cost, now)
            last = watched.dequeue(0, now)
            watched.cancel(last, now)
            assert watched.violations == [], name
            assert watched.summary()["checked_ops"] > 0

    def test_watchdog_is_invisible_in_results(self):
        # A full simulated comparison with validate=True must produce
        # byte-identical metrics to the unwatched run.
        specs = [
            TenantSpec(
                tenant_id=t,
                api_costs={"op": FixedCost(costs[0])},
                arrivals=Backlogged(window=2),
            )
            for t, costs in (("A", (1.0,)), ("B", (4.0,)))
        ]
        config = ExperimentConfig(
            name="watchdog-diff",
            schedulers=("2dfq", "wfq", "drr"),
            num_threads=2,
            thread_rate=1.0,
            duration=3.0,
        )
        import dataclasses

        plain = run_comparison(specs, config)
        watched = run_comparison(
            specs, dataclasses.replace(config, validate=True)
        )
        for name in config.schedulers:
            assert pickle.dumps(plain[name]) == pickle.dumps(watched[name])


class TestEnvSwitch:
    def test_env_validate_parses_common_values(self, monkeypatch):
        for value, expected in (
            ("", False), ("0", False), ("false", False), ("no", False),
            ("1", True), ("true", True), ("yes", True), ("on", True),
        ):
            monkeypatch.setenv("REPRO_VALIDATE", value)
            assert env_validate() is expected, value
        monkeypatch.delenv("REPRO_VALIDATE")
        assert env_validate() is False

    def test_env_validate_wraps_runner(self, monkeypatch):
        # REPRO_VALIDATE=1 + a seeded mutant must blow up a run_single.
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        import repro.core.registry as registry

        monkeypatch.setitem(
            registry._FACTORIES, "2dfq", OvercountingScheduler
        )
        specs = [
            TenantSpec(
                tenant_id="A",
                api_costs={"op": FixedCost(1.0)},
                arrivals=Backlogged(window=1),
            )
        ]
        config = ExperimentConfig(
            name="env-validate",
            schedulers=("2dfq",),
            num_threads=1,
            thread_rate=1.0,
            duration=1.0,
        )
        from repro.experiments import run_single

        with pytest.raises(InvariantViolation):
            run_single("2dfq", specs, config)
