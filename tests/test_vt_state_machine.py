"""State-machine edge cases of the virtual-time scheduler framework."""

import pytest

from repro.core import WFQScheduler, TwoDFQScheduler
from repro.errors import ReproError, SchedulerError

from conftest import make_request


class TestErrorPaths:
    def test_complete_unknown_tenant_rejected(self):
        s = WFQScheduler(num_threads=1)
        ghost = make_request("ghost", 1.0)
        with pytest.raises(SchedulerError):
            s.complete(ghost, 1.0, 0.0)

    def test_complete_idle_tenant_rejected(self):
        s = WFQScheduler(num_threads=1)
        r = make_request("A", 1.0)
        s.enqueue(r, 0.0)
        out = s.dequeue(0, 0.0)
        s.complete(out, 1.0, 1.0)
        with pytest.raises(SchedulerError):
            s.complete(out, 1.0, 2.0)  # double completion

    def test_errors_share_base_class(self):
        assert issubclass(SchedulerError, ReproError)


class TestActivationLifecycle:
    def test_tenant_active_while_running_even_with_empty_queue(self):
        s = WFQScheduler(num_threads=1)
        s.enqueue(make_request("A", 4.0), 0.0)
        out = s.dequeue(0, 0.0)
        state = s.tenant_state("A")
        assert not state.backlogged
        assert state.active  # still receiving virtual-clock share
        s.complete(out, 4.0, 4.0)
        assert not state.active

    def test_idle_tenant_fast_forwards_start_tag(self):
        """Figure 7 line 4: a returning tenant's start tag is lifted to
        the current virtual time, forgiving its idle period."""
        s = WFQScheduler(num_threads=1, thread_rate=1.0)
        s.enqueue(make_request("A", 1.0), 0.0)
        s.enqueue(make_request("B", 1.0), 0.0)
        a = s.dequeue(0, 0.0)
        s.complete(a, 1.0, 1.0)
        b = s.dequeue(0, 1.0)
        s.complete(b, 1.0, 2.0)
        # Both idle now; virtual time stalled.  B returns much later.
        s.enqueue(make_request("B", 1.0), 10.0)
        state_b = s.tenant_state("B")
        # S_B = max(old S_B, v(10)); v stalled at the old value, so the
        # tag does not regress and B is immediately eligible.
        assert state_b.start_tag >= 1.0
        assert s.dequeue(0, 10.0).tenant_id == "B"

    def test_virtual_clock_weight_matches_active_tenants(self):
        s = TwoDFQScheduler(num_threads=2)
        for tenant in ("A", "B", "C"):
            s.enqueue(make_request(tenant, 1.0), 0.0)
        assert s.virtual_clock.active_weight == pytest.approx(3.0)
        out = [s.dequeue(i, 0.0) for i in range(2)]
        # Dequeued tenants remain active while running.
        assert s.virtual_clock.active_weight == pytest.approx(3.0)
        for request in out:
            s.complete(request, 1.0, 1.0)
        # Two tenants drained fully; one still backlogged.
        assert s.virtual_clock.active_weight == pytest.approx(1.0)

    def test_weighted_tenant_charged_proportionally(self):
        s = WFQScheduler(num_threads=1)
        heavy = make_request("H", 10.0, weight=2.0)
        light = make_request("L", 10.0, weight=1.0)
        s.enqueue(heavy, 0.0)
        s.enqueue(light, 0.0)
        s.dequeue(0, 0.0)
        s.dequeue(0, 0.0)
        assert s.tenant_state("H").start_tag == pytest.approx(5.0)
        assert s.tenant_state("L").start_tag == pytest.approx(10.0)

    def test_weighted_fair_sharing_two_to_one(self):
        """A weight-2 tenant receives twice the service of a weight-1
        tenant over a long horizon."""
        import heapq

        s = WFQScheduler(num_threads=2)
        served = {"H": 0.0, "L": 0.0}
        weights = {"H": 2.0, "L": 1.0}
        for tenant, weight in weights.items():
            for _ in range(2):
                s.enqueue(make_request(tenant, 5.0, weight=weight), 0.0)
        free = [(0.0, i) for i in range(2)]
        heapq.heapify(free)
        completions: list = []
        horizon = 600.0
        while free:
            now, thread = heapq.heappop(free)
            if now >= horizon:
                continue
            while completions and completions[0][0] <= now:
                end, _, done = heapq.heappop(completions)
                s.complete(done, done.cost, end)
            request = s.dequeue(thread, now)
            end = now + request.cost
            if end <= horizon:
                served[request.tenant_id] += request.cost
            s.enqueue(
                make_request(
                    request.tenant_id, 5.0, weight=weights[request.tenant_id]
                ),
                now,
            )
            heapq.heappush(completions, (end, request.seqno, request))
            heapq.heappush(free, (end, thread))
        assert served["H"] / served["L"] == pytest.approx(2.0, rel=0.1)
