"""The cancellation path through the scheduler stack.

Every scheduler implements ``cancel(request, now)`` with exact charge
refunds: a cancelled request leaves the scheduler's virtual-time (or
deficit) state as if it had never been dispatched, mirroring the
``complete()`` reconciliation in the other direction.  The property
tests at the bottom pin the two race orderings:

* **cancel-then-complete**: after a cancel, a stale ``complete()`` is a
  no-op and the scheduler's state matches a control scheduler that
  never saw the request (tags approximately -- ``(S + x) - x`` is not
  exact in floats -- and integer/structural state exactly);
* **complete-then-cancel**: after a normal completion, a stale
  ``cancel()`` returns ``False`` and changes nothing at all.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import make_scheduler, scheduler_names
from repro.core.request import Request, RequestPhase
from repro.core.vt_base import VirtualTimeScheduler

ALL_SCHEDULERS = scheduler_names()
VT_SCHEDULERS = [
    n for n in ALL_SCHEDULERS
    if isinstance(make_scheduler(n, num_threads=1), VirtualTimeScheduler)
]

APPROX = dict(rel=1e-9, abs=1e-12)


def state_snapshot(scheduler):
    """Comparable scheduler state: structural fields exact, tags float."""
    tenants = {}
    for tid, state in scheduler.tenants().items():
        tenants[tid] = {
            "start_tag": state.start_tag,
            "queued": len(state.queue),
            "running": state.running,
            "active": state.active,
            "deficit": state.deficit,
        }
    snap = {"backlog": scheduler.backlog, "tenants": tenants}
    clock = getattr(scheduler, "virtual_clock", None)
    if clock is not None:
        snap["vt"] = clock.value
        snap["active_weight"] = clock.active_weight
    return snap


def assert_snapshots_match(got, want):
    assert got["backlog"] == want["backlog"]
    assert set(got["tenants"]) == set(want["tenants"])
    for tid, state in want["tenants"].items():
        other = got["tenants"][tid]
        assert other["queued"] == state["queued"], tid
        assert other["running"] == state["running"], tid
        assert other["active"] == state["active"], tid
        assert other["start_tag"] == pytest.approx(state["start_tag"], **APPROX)
        assert other["deficit"] == pytest.approx(state["deficit"], **APPROX)
    if "vt" in want:
        assert got["vt"] == pytest.approx(want["vt"], **APPROX)
        assert got["active_weight"] == pytest.approx(
            want["active_weight"], **APPROX
        )


class TestCancelQueued:
    @pytest.mark.parametrize("name", ALL_SCHEDULERS)
    def test_cancel_queued_removes_and_counts(self, name):
        scheduler = make_scheduler(name, num_threads=2)
        keep = Request(tenant_id="A", cost=1.0)
        victim = Request(tenant_id="B", cost=4.0)
        scheduler.enqueue(keep, 0.0)
        scheduler.enqueue(victim, 0.0)
        assert scheduler.cancel(victim, 0.0) is True
        assert victim.phase == RequestPhase.CANCELLED
        assert scheduler.backlog == 1
        assert scheduler.cancelled_count == 1
        # The cancelled request is gone: only `keep` can be dispatched.
        assert scheduler.dequeue(0, 0.0) is keep
        assert scheduler.dequeue(1, 0.0) is None

    @pytest.mark.parametrize("name", ALL_SCHEDULERS)
    def test_cancel_is_idempotent(self, name):
        scheduler = make_scheduler(name, num_threads=1)
        victim = Request(tenant_id="A", cost=1.0)
        scheduler.enqueue(victim, 0.0)
        assert scheduler.cancel(victim, 0.0) is True
        assert scheduler.cancel(victim, 0.0) is False
        assert scheduler.cancelled_count == 1

    @pytest.mark.parametrize("name", ALL_SCHEDULERS)
    def test_cancel_unknown_request_is_false(self, name):
        scheduler = make_scheduler(name, num_threads=1)
        scheduler.enqueue(Request(tenant_id="A", cost=1.0), 0.0)
        stranger = Request(tenant_id="Z", cost=1.0)
        assert scheduler.cancel(stranger, 0.0) is False

    def test_round_robin_ring_survives_emptied_tenant(self):
        # Cancelling B's only request must remove B from the RR ring;
        # otherwise the next dequeue pops an empty queue.
        scheduler = make_scheduler("round-robin", num_threads=1)
        a1 = Request(tenant_id="A", cost=1.0)
        b1 = Request(tenant_id="B", cost=1.0)
        a2 = Request(tenant_id="A", cost=1.0)
        for r in (a1, b1, a2):
            scheduler.enqueue(r, 0.0)
        assert scheduler.cancel(b1, 0.0)
        assert scheduler.dequeue(0, 0.0) is a1
        scheduler.complete(a1, a1.cost, 1.0)
        assert scheduler.dequeue(0, 1.0) is a2
        assert scheduler.backlog == 0

    def test_fifo_global_queue_skips_cancelled(self):
        scheduler = make_scheduler("fifo", num_threads=1)
        requests = [Request(tenant_id=t, cost=1.0) for t in ("A", "B", "C")]
        for r in requests:
            scheduler.enqueue(r, 0.0)
        assert scheduler.cancel(requests[1], 0.0)
        assert scheduler.dequeue(0, 0.0) is requests[0]
        scheduler.complete(requests[0], 1.0, 1.0)
        assert scheduler.dequeue(0, 1.0) is requests[2]

    @pytest.mark.parametrize("name", VT_SCHEDULERS)
    def test_cancelling_last_request_idles_tenant(self, name):
        scheduler = make_scheduler(name, num_threads=1)
        victim = Request(tenant_id="A", cost=2.0)
        scheduler.enqueue(victim, 0.0)
        state = scheduler.tenant_state("A")
        assert state.active
        assert scheduler.cancel(victim, 0.5)
        assert not state.active
        assert scheduler.virtual_clock.active_weight == 0.0


class TestCancelRunning:
    @pytest.mark.parametrize("name", VT_SCHEDULERS)
    def test_refund_restores_start_tag(self, name):
        scheduler = make_scheduler(name, num_threads=2)
        keep = Request(tenant_id="A", cost=1.0)
        victim = Request(tenant_id="A", cost=4.0)
        scheduler.enqueue(keep, 0.0)
        scheduler.enqueue(victim, 0.0)
        first = scheduler.dequeue(0, 0.0)
        tag_before = scheduler.tenant_state("A").start_tag
        second = scheduler.dequeue(1, 0.0)
        assert {first, second} == {keep, victim}
        assert scheduler.cancel(second, 0.0)
        state = scheduler.tenant_state("A")
        assert state.start_tag == pytest.approx(tag_before, **APPROX)
        assert state.running == 1

    @pytest.mark.parametrize("name", VT_SCHEDULERS)
    def test_refund_covers_refresh_overage(self, name):
        # Refresh past the credit pushes the tag; the cancel refund must
        # return it too (charge = reported_usage + credit).
        scheduler = make_scheduler(name, num_threads=1)
        victim = Request(tenant_id="A", cost=10.0)
        scheduler.enqueue(victim, 0.0)
        tag_idle = scheduler.tenant_state("A").start_tag
        scheduler.dequeue(0, 0.0)
        estimate = victim.charged_cost
        scheduler.refresh(victim, estimate + 3.0, 0.5)
        assert victim.credit == 0.0
        assert scheduler.cancel(victim, 0.5)
        assert scheduler.tenant_state("A").start_tag == pytest.approx(
            tag_idle, **APPROX
        )

    def test_drr_refunds_deficit(self):
        scheduler = make_scheduler("drr", num_threads=1)
        victim = Request(tenant_id="A", cost=5.0)
        filler = Request(tenant_id="A", cost=1.0)
        scheduler.enqueue(victim, 0.0)
        scheduler.enqueue(filler, 0.0)
        dispatched = scheduler.dequeue(0, 0.0)
        assert dispatched is victim
        deficit_after_dispatch = scheduler.tenant_state("A").deficit
        assert scheduler.cancel(victim, 0.0)
        assert scheduler.tenant_state("A").deficit == pytest.approx(
            deficit_after_dispatch + victim.cost
        )

    @pytest.mark.parametrize("name", ALL_SCHEDULERS)
    def test_stale_complete_after_cancel_is_noop(self, name):
        scheduler = make_scheduler(name, num_threads=1)
        victim = Request(tenant_id="A", cost=2.0)
        scheduler.enqueue(victim, 0.0)
        scheduler.dequeue(0, 0.0)
        assert scheduler.cancel(victim, 0.5)
        snap = state_snapshot(scheduler)
        scheduler.complete(victim, 2.0, 1.0)  # stale: must change nothing
        assert victim.phase == RequestPhase.CANCELLED
        assert scheduler.completed_count == 0
        assert_snapshots_match(state_snapshot(scheduler), snap)


# -- property tests (satellite: race orderings over seeds) -------------------

orderings = st.sampled_from(["cancel-then-complete", "complete-then-cancel"])


@settings(max_examples=60, deadline=None)
@given(
    name=st.sampled_from(ALL_SCHEDULERS),
    cost_a=st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
    cost_b=st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
    cost_victim=st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
    usage_fraction=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    ordering=orderings,
)
def test_cancel_orderings_match_never_submitting(
    name, cost_a, cost_b, cost_victim, usage_fraction, ordering
):
    """Drive a test scheduler and a control scheduler through the same
    workload; the test scheduler additionally dispatches (and part-way
    refreshes) a victim request that is then cancelled.  Afterwards the
    two schedulers' states must match -- the victim might as well never
    have been submitted.  In the complete-then-cancel ordering the stale
    cancel must leave the post-completion state untouched, exactly.
    """
    test = make_scheduler(name, num_threads=2)
    control = make_scheduler(name, num_threads=2)
    for scheduler in (test, control):
        scheduler.enqueue(Request(tenant_id="A", cost=cost_a), 0.0)
        scheduler.enqueue(Request(tenant_id="B", cost=cost_b), 0.0)
        first = scheduler.dequeue(0, 0.0)
        second = scheduler.dequeue(1, 0.0)
        assert first is not None and second is not None

    victim = Request(tenant_id="A", cost=cost_victim)
    test.enqueue(victim, 1.0)
    dispatched = test.dequeue(0, 1.0)
    assert dispatched is victim  # only queued request
    usage = usage_fraction * cost_victim
    if usage > 0.0:
        test.refresh(victim, usage, 1.5)

    if ordering == "cancel-then-complete":
        assert test.cancel(victim, 2.0) is True
        test.complete(victim, cost_victim, 2.5)  # stale: no-op
        assert victim.phase == RequestPhase.CANCELLED
        # Advance the control clock to the same wallclock so virtual
        # times are comparable.
        if hasattr(control, "virtual_time"):
            control.virtual_time(2.0)
        assert_snapshots_match(state_snapshot(test), state_snapshot(control))
        assert test.completed_count == control.completed_count == 0
        assert test.cancelled_count == 1
    else:
        test.complete(victim, max(0.0, cost_victim - usage), 2.0)
        assert victim.phase == RequestPhase.DONE
        snap = state_snapshot(test)
        assert test.cancel(victim, 2.5) is False
        # A stale cancel after completion changes nothing, bit for bit.
        assert state_snapshot(test) == snap
        assert test.completed_count == 1
        assert test.cancelled_count == 0


@settings(max_examples=40, deadline=None)
@given(
    name=st.sampled_from(ALL_SCHEDULERS),
    cost_victim=st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
)
def test_queued_cancel_matches_never_submitting(name, cost_victim):
    """Cancelling a still-queued request also restores the
    never-submitted state (nothing was charged; only backlog structures
    must be repaired)."""
    test = make_scheduler(name, num_threads=2)
    control = make_scheduler(name, num_threads=2)
    for scheduler in (test, control):
        scheduler.enqueue(Request(tenant_id="A", cost=1.0), 0.0)
        scheduler.dequeue(0, 0.0)

    victim = Request(tenant_id="A", cost=cost_victim)
    test.enqueue(victim, 1.0)
    assert test.cancel(victim, 1.0) is True
    if hasattr(control, "virtual_time"):
        control.virtual_time(1.0)
    assert_snapshots_match(state_snapshot(test), state_snapshot(control))
