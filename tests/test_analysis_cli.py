"""CLI feature tests: baseline delta mode, github output, the dataflow
cache, and the default multi-root scan with per-root rule subsets."""

from __future__ import annotations

import json
import os

from repro.analysis.cli import AUX_RULE_SUBSET, AUX_SCAN_ROOTS, main

FIXTURES = os.path.join(os.path.dirname(__file__), "analysis_fixtures")


def _write(path, text):
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)


def _mini_tree(root) -> str:
    """A tiny package with two identical RPR001 findings."""
    pkg = os.path.join(str(root), "pkg")
    _write(
        os.path.join(pkg, "timer.py"),
        "import time\n"
        "\n"
        "\n"
        "def stamp() -> float:\n"
        "    return time.time()\n"
        "\n"
        "\n"
        "def stamp_again() -> float:\n"
        "    return time.time()\n",
    )
    return pkg


# -- baselines -----------------------------------------------------------------


def test_baseline_round_trip_suppresses_known_findings(tmp_path, capsys):
    pkg = _mini_tree(tmp_path)
    baseline = str(tmp_path / "baseline.json")
    assert main(["--write-baseline", baseline, pkg]) == 0
    payload = json.loads(open(baseline).read())
    assert payload["version"] == 1
    # two identical findings collapse into one entry of multiplicity 2.
    assert list(payload["entries"].values()) == [2]
    capsys.readouterr()

    assert main(["--baseline", baseline, pkg]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out and "2 baselined" in out


def test_baseline_budget_is_multiplicity_aware(tmp_path, capsys):
    """A baseline entry of multiplicity N absorbs N occurrences; the
    N+1st identical finding in the same file is new and fails the run."""
    pkg = _mini_tree(tmp_path)
    baseline = str(tmp_path / "baseline.json")
    assert main(["--write-baseline", baseline, pkg]) == 0
    with open(os.path.join(pkg, "timer.py"), "a", encoding="utf-8") as fh:
        fh.write("\n\ndef third() -> float:\n    return time.time()\n")
    capsys.readouterr()

    assert main(["--baseline", baseline, pkg]) == 1
    out = capsys.readouterr().out
    assert "1 finding(s)" in out and "2 baselined" in out
    # the surviving finding is the newly appended line.
    assert ":13:" in out


def test_baseline_is_robust_to_pure_line_drift(tmp_path, capsys):
    """Entries are keyed (path, code, message), not line numbers: adding
    a comment above the findings must not resurrect them."""
    pkg = _mini_tree(tmp_path)
    baseline = str(tmp_path / "baseline.json")
    assert main(["--write-baseline", baseline, pkg]) == 0
    source_path = os.path.join(pkg, "timer.py")
    with open(source_path, encoding="utf-8") as fh:
        source = fh.read()
    _write(source_path, "# a comment shifting every line\n" + source)
    capsys.readouterr()

    assert main(["--baseline", baseline, pkg]) == 0


def test_unreadable_baseline_is_a_usage_error(tmp_path):
    pkg = _mini_tree(tmp_path)
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    try:
        main(["--baseline", str(bad), pkg])
    except SystemExit as exc:
        assert exc.code == 2
    else:  # pragma: no cover - argparse always raises
        raise AssertionError("expected SystemExit")


# -- github annotations --------------------------------------------------------


def test_github_format_emits_escaped_workflow_commands(tmp_path, capsys):
    pkg = _mini_tree(tmp_path)
    assert main(["--format", "github", pkg]) == 1
    out = capsys.readouterr().out
    lines = out.strip().splitlines()
    assert len(lines) == 3  # two errors + the summary notice
    assert lines[0].startswith("::error file=")
    assert "title=RPR001::" in lines[0]
    assert ",line=5," in lines[0]
    assert lines[-1].startswith("::notice title=repro.analysis::")
    assert "2 finding(s)" in lines[-1]


def test_github_format_on_clean_tree(tmp_path, capsys):
    pkg = os.path.join(str(tmp_path), "pkg")
    _write(os.path.join(pkg, "ok.py"), "X = 1\n")
    assert main(["--format", "github", pkg]) == 0
    out = capsys.readouterr().out
    assert "::error" not in out
    assert "0 finding(s)" in out


# -- the dataflow cache --------------------------------------------------------


def test_cache_persists_dataflow_report_across_runs(tmp_path, capsys):
    fixture = os.path.join(FIXTURES, "dimarith")
    cache = str(tmp_path / "dfcache")
    first = main(["--cache", cache, "--format", "json", fixture])
    out_first = capsys.readouterr().out
    entries = [e for e in os.listdir(cache) if e.startswith("dataflow-")]
    assert len(entries) == 1 and entries[0].endswith(".json")

    second = main(["--cache", cache, "--format", "json", fixture])
    out_second = capsys.readouterr().out
    assert (first, out_first) == (second, out_second)


def test_cache_entry_is_keyed_on_source_content(tmp_path, capsys):
    pkg = _mini_tree(tmp_path)
    cache = str(tmp_path / "dfcache")
    main(["--cache", cache, pkg])
    with open(os.path.join(pkg, "timer.py"), "a", encoding="utf-8") as fh:
        fh.write("\n\ndef third() -> float:\n    return time.time()\n")
    main(["--cache", cache, pkg])
    entries = [e for e in os.listdir(cache) if e.startswith("dataflow-")]
    assert len(entries) == 2  # changed tree, new digest
    capsys.readouterr()


def test_corrupt_cache_entry_is_a_miss_not_an_error(tmp_path, capsys):
    fixture = os.path.join(FIXTURES, "dimarith")
    cache = str(tmp_path / "dfcache")
    assert main(["--cache", cache, fixture]) == 1
    capsys.readouterr()
    (entry,) = [e for e in os.listdir(cache) if e.startswith("dataflow-")]
    _write(os.path.join(cache, entry), "not json {")
    assert main(["--cache", cache, fixture]) == 1
    out = capsys.readouterr().out
    assert "RPR101" in out


# -- default roots and per-root subsets ----------------------------------------


def test_default_scan_runs_aux_roots_under_determinism_subset(
    tmp_path, monkeypatch, capsys
):
    """benchmarks/, examples/ and tests/ are scanned for RPR001/RPR002
    hygiene, but structure rules (RPR030) stay scoped to src/repro, and
    the seeded fixture packages are excluded entirely."""
    _write(os.path.join(str(tmp_path), "src", "repro", "mod.py"), "X = 1\n")
    _write(
        os.path.join(str(tmp_path), "benchmarks", "bench_x.py"),
        "def check(x):\n    assert x\n",  # RPR030 bait: aux-exempt
    )
    _write(
        os.path.join(str(tmp_path), "tests", "test_x.py"),
        "import time\n\n\ndef probe():\n    return time.time()\n",
    )
    _write(
        os.path.join(str(tmp_path), "tests", "analysis_fixtures", "bad.py"),
        "import time\n\n\ndef seeded():\n    return time.time()\n",
    )
    monkeypatch.chdir(tmp_path)
    assert main([]) == 1
    out = capsys.readouterr().out
    assert "test_x.py" in out and "RPR001" in out
    assert "bench_x.py" not in out  # RPR030 does not apply to aux roots
    assert "analysis_fixtures" not in out  # fixtures never scanned


def test_explicit_paths_use_the_full_catalogue(tmp_path, monkeypatch, capsys):
    _write(
        os.path.join(str(tmp_path), "benchmarks", "bench_x.py"),
        "def check(x):\n    assert x\n",
    )
    monkeypatch.chdir(tmp_path)
    assert main(["benchmarks"]) == 1
    out = capsys.readouterr().out
    assert "RPR030" in out  # explicit path: no aux exemption


def test_aux_constants_shape() -> None:
    assert AUX_SCAN_ROOTS == ("benchmarks", "examples", "tests")
    assert {"RPR001", "RPR002"} <= AUX_RULE_SUBSET
