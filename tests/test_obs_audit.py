"""Fairness-auditor, Prometheus-exporter and flight-recorder tests.

The acceptance criterion for the bursty monitor (ISSUE 7) is the last
class: on the Fig-9 production workload the auditor flags WFQ and WF²Q
as bursty and stays quiet for 2DFQ.  Burstiness under WF²Q manifests at
the granularity of individual expensive requests (paper Fig 5), so the
acceptance run samples at 20 ms -- at the default 100 ms interval each
sample aggregates enough requests to smooth WF²Q's oscillation away,
while WFQ's multi-second starvation bursts remain visible at any
sampling rate.
"""

import dataclasses
import json

import pytest

from repro.experiments.production import (
    production_config,
    production_specs,
    production_trace,
)
from repro.experiments.runner import run_single
from repro.obs import (
    AuditConfig,
    FairnessAuditor,
    FlightRecorder,
    MetricsRegistry,
    TraceEvent,
    TraceSession,
    Tracer,
    prometheus_text,
)


def enqueue_event(t, tenant, seqno, cost=1.0):
    return TraceEvent(
        "enqueue", t, None, tenant, {"seqno": seqno, "cost": cost, "api": "op"}
    )


def dispatch_event(t, tenant, seqno):
    return TraceEvent("dispatch", t, 0.0, tenant, {"seqno": seqno, "thread": 0})


def complete_event(t, tenant, actual, charged):
    return TraceEvent(
        "complete", t, None, tenant, {"actual": actual, "charged": charged}
    )


class TestLagMonitor:
    def make(self):
        # Two tenants at capacity 2.0 -> fair rate 1.0, so lag in
        # service units reads directly as seconds.
        return FairnessAuditor(AuditConfig(capacity=2.0, lag_threshold_seconds=0.25))

    def test_trips_above_threshold_and_clears_with_hysteresis(self):
        auditor = self.make()
        auditor.on_sample(1.0, {"A": 0.0, "B": 1.0}, {"A": 0.5, "B": 0.5})
        assert auditor.tripped_tenants("lag") == ["A"]
        # 0.2 s of lag is below the 0.25 s trip threshold but above the
        # 0.125 s clear threshold: the trip must hold (no flapping).
        auditor.on_sample(2.0, {"A": 1.0, "B": 2.0}, {"A": 1.2, "B": 1.0})
        assert auditor.tripped_tenants("lag") == ["A"]
        auditor.on_sample(3.0, {"A": 3.0, "B": 3.0}, {"A": 3.0, "B": 3.0})
        assert auditor.tripped_tenants("lag") == []
        assert auditor.ever_tripped("lag") == ["A"]
        tripped_flags = [e["tripped"] for e in auditor.trips if e["tenant"] == "A"]
        assert tripped_flags == [True, False]

    def test_trip_record_carries_lag_and_threshold(self):
        auditor = self.make()
        auditor.on_sample(1.0, {"A": 0.0, "B": 1.0}, {"A": 0.5, "B": 0.5})
        (entry,) = auditor.trips
        assert entry["monitor"] == "lag"
        assert entry["lag_seconds"] == pytest.approx(0.5)
        assert entry["threshold"] == 0.25
        assert entry["t"] == 1.0

    def test_without_capacity_the_lag_monitor_is_inert(self):
        auditor = FairnessAuditor(AuditConfig(capacity=None))
        auditor.on_sample(1.0, {"A": 0.0}, {"A": 100.0})
        assert auditor.trips == []


class TestBurstyMonitor:
    CFG = AuditConfig(
        capacity=4.0,
        lag_threshold_seconds=1e9,  # isolate the bursty monitor
        burst_window=4,
        burst_cov_threshold=1.0,
        burst_consecutive=2,
    )

    def backlog(self, auditor, tenant, n=20):
        for i in range(n):
            auditor.on_event(enqueue_event(0.0, tenant, i))

    def feed(self, auditor, deltas, start_t=0.0):
        total, t = 0.0, start_t
        auditor.on_sample(t, {"A": total}, {"A": total})
        for delta in deltas:
            t += 1.0
            total += delta
            auditor.on_sample(t, {"A": total}, {"A": total})
        return t

    def test_on_off_service_to_a_backlogged_tenant_trips(self):
        auditor = FairnessAuditor(self.CFG)
        self.backlog(auditor, "A")
        # Served in bursts: the whole fair share in one interval out of
        # four.  Window [4,0,0,0]: CoV = sqrt(3) ~ 1.73 > 1.0.
        self.feed(auditor, [4, 0, 0, 0, 4, 0, 0, 0, 4])
        assert auditor.ever_tripped("bursty") == ["A"]
        trip = next(e for e in auditor.trips if e["monitor"] == "bursty")
        assert trip["tripped"] is True
        assert trip["cov"] == pytest.approx(3.0**0.5)
        assert trip["window"] == 4

    def test_smooth_service_never_trips(self):
        auditor = FairnessAuditor(self.CFG)
        self.backlog(auditor, "A")
        self.feed(auditor, [1.0] * 12)
        assert auditor.ever_tripped("bursty") == []

    def test_trip_clears_once_service_smooths_out(self):
        auditor = FairnessAuditor(self.CFG)
        self.backlog(auditor, "A")
        t = self.feed(auditor, [4, 0, 0, 0, 4, 0, 0, 0, 4])
        assert auditor.tripped_tenants("bursty") == ["A"]
        total = auditor._tenants["A"].last_actual
        for _ in range(6):
            t += 1.0
            total += 1.0
            auditor.on_sample(t, {"A": total}, {"A": total})
        assert auditor.tripped_tenants("bursty") == []
        clear = [e for e in auditor.trips if e["monitor"] == "bursty"][-1]
        assert clear["tripped"] is False

    def test_idle_tenant_is_gated_out(self):
        """Bursty *arrivals* are not bursty *allocations*: with no
        enqueue events the tenant is never backlogged and the same
        on/off service pattern must not trip."""
        auditor = FairnessAuditor(self.CFG)
        self.feed(auditor, [4, 0, 0, 0, 4, 0, 0, 0, 4])
        assert auditor.ever_tripped("bursty") == []

    def test_draining_the_queue_resets_the_window(self):
        auditor = FairnessAuditor(self.CFG)
        auditor.on_event(enqueue_event(0.0, "A", 0))
        auditor.on_event(dispatch_event(0.0, "A", 0))  # queue empty again
        self.feed(auditor, [4, 0, 0, 0, 4, 0, 0, 0, 4])
        assert auditor.ever_tripped("bursty") == []


class TestEstimatorDriftMonitor:
    CFG = AuditConfig(drift_min_observations=3, drift_alpha=0.5, drift_threshold=0.5)

    def test_persistent_miscarge_trips_then_accuracy_clears(self):
        auditor = FairnessAuditor(self.CFG)
        # |2 - 1|/1 = 1.0 relative error; EWMA -> 0.5, 0.75, 0.875.
        for i in range(3):
            auditor.on_event(complete_event(float(i), "B", actual=1.0, charged=2.0))
        report = auditor.report()["monitors"]["estimator_drift"]
        assert report["tripped"] is True
        assert report["observations"] == 3
        assert report["ewma"] == pytest.approx(0.875)
        # Accurate charging decays the EWMA below threshold/2 -> clears.
        for i in range(3, 6):
            auditor.on_event(complete_event(float(i), "B", actual=1.0, charged=1.0))
        assert auditor.report()["monitors"]["estimator_drift"]["tripped"] is False
        flags = [
            e["tripped"] for e in auditor.trips if e["monitor"] == "estimator_drift"
        ]
        assert flags == [True, False]
        # Drift is a run-wide monitor, not per-tenant.
        assert all(
            e["tenant"] is None
            for e in auditor.trips
            if e["monitor"] == "estimator_drift"
        )

    def test_needs_minimum_observations(self):
        auditor = FairnessAuditor(self.CFG)
        auditor.on_event(complete_event(0.0, "B", actual=1.0, charged=5.0))
        assert auditor.trips == []

    def test_zero_actual_completions_are_skipped(self):
        auditor = FairnessAuditor(self.CFG)
        for i in range(10):
            auditor.on_event(complete_event(float(i), "B", actual=0.0, charged=1.0))
        assert auditor.report()["monitors"]["estimator_drift"]["observations"] == 0


class TestTracerIntegration:
    def test_trips_emit_audit_events_and_gauges(self):
        tracer = Tracer("audited")
        auditor = FairnessAuditor(
            AuditConfig(capacity=2.0, lag_threshold_seconds=0.25), tracer
        )
        tracer.add_sink(auditor.on_event)  # audit events come back through
        auditor.on_sample(1.0, {"A": 0.0, "B": 1.0}, {"A": 0.5, "B": 0.5})
        (event,) = tracer.of_kind("audit")
        assert event.tenant == "A"
        assert event.data["monitor"] == "lag"
        assert event.data["tripped"] is True
        registry = tracer.registry
        assert registry.counter("audit.lag").value == 1
        assert registry.gauge("audit.samples").value == 1.0
        assert registry.gauge("audit.tenants_lagging").value == 1.0
        assert registry.gauge("audit.tenants_bursty").value == 0.0

    def test_attach_tracer_ignores_disabled(self):
        auditor = FairnessAuditor()
        auditor.attach_tracer(Tracer("off", enabled=False))
        assert auditor._tracer is None
        # Trips still recorded locally, just not emitted anywhere.
        auditor.config.capacity = 1.0
        auditor.on_sample(1.0, {"A": 0.0}, {"A": 1.0})
        assert auditor.ever_tripped("lag") == ["A"]

    def test_report_is_json_ready(self):
        auditor = FairnessAuditor(AuditConfig(capacity=2.0))
        auditor.on_sample(1.0, {"A": 0.0, "B": 1.0}, {"A": 0.5, "B": 0.5})
        payload = json.dumps(auditor.report())
        assert "monitors" in payload


class TestPrometheusText:
    def fake_registry(self):
        times = iter([1.0, 1.5])
        registry = MetricsRegistry(clock=lambda: next(times))
        registry.counter("scheduler.dispatches").inc(3)
        registry.gauge("audit.samples").set(12.0)
        timer = registry.timer("scheduler.phase.select")
        timer.start()
        timer.stop()
        return registry

    def test_pinned_output(self):
        text = prometheus_text(self.fake_registry(), labels={"run": "fig9--wfq"})
        assert text == (
            "# TYPE repro_audit_samples gauge\n"
            'repro_audit_samples{run="fig9--wfq"} 12\n'
            "# TYPE repro_scheduler_dispatches counter\n"
            'repro_scheduler_dispatches{run="fig9--wfq"} 3\n'
            "# TYPE repro_scheduler_phase_select_count counter\n"
            'repro_scheduler_phase_select_count{run="fig9--wfq"} 1\n'
            "# TYPE repro_scheduler_phase_select_seconds_total counter\n"
            'repro_scheduler_phase_select_seconds_total{run="fig9--wfq"} 0.5\n'
        )

    def test_every_line_parses_as_exposition_format(self):
        for line in prometheus_text(self.fake_registry()).splitlines():
            if line.startswith("# TYPE"):
                _, _, metric, prom_type = line.split()
                assert prom_type in {"counter", "gauge"}
            else:
                metric, value = line.split()
                float(value)
            assert metric.replace("_", "a").isidentifier()

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_invalid_leading_character_is_escaped(self):
        registry = MetricsRegistry()
        registry.counter("2dfq.hit-rate").inc()
        text = prometheus_text(registry, namespace="")
        assert "_2dfq_hit_rate 1" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        text = prometheus_text(registry, labels={"run": 'a"b\\c'})
        assert '{run="a\\"b\\\\c"}' in text


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(5):
            recorder.on_event(TraceEvent("vt_update", float(i), 0.0, None, {}))
        assert len(recorder) == 3
        assert recorder.events_seen == 5
        assert recorder.dumps == []

    def test_fault_triggers_a_dump_of_the_ring(self):
        recorder = FlightRecorder(capacity=8)
        recorder.on_event(TraceEvent("dispatch", 0.0, 0.0, "A", {"seqno": 0}))
        recorder.on_event(TraceEvent("dispatch", 1.0, 1.0, "B", {"seqno": 1}))
        trigger = TraceEvent("fault", 2.0, None, None, {"fault": "worker_crash"})
        recorder.on_event(trigger)
        (dump,) = recorder.dumps
        assert dump["trigger"] == trigger.as_dict()
        assert dump["events_seen"] == 3
        assert [e["kind"] for e in dump["ring"]] == ["dispatch", "dispatch", "fault"]

    def test_dump_storm_is_capped_and_counted(self):
        recorder = FlightRecorder(capacity=4, max_dumps=1)
        for i in range(3):
            recorder.on_event(TraceEvent("invariant", float(i), None, None, {}))
        assert len(recorder.dumps) == 1
        assert recorder.suppressed_dumps == 2
        assert recorder.payload()["suppressed_dumps"] == 2

    def test_write_round_trips(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        recorder.on_event(TraceEvent("fault", 0.0, None, None, {"fault": "x"}))
        path = recorder.write(tmp_path / "flight.json")
        payload = json.loads(path.read_text())
        assert payload["capacity"] == 4
        assert payload["trigger_kinds"] == ["fault", "invariant"]
        assert len(payload["dumps"]) == 1

    def test_sink_sees_events_past_the_tracer_cap(self):
        """The recorder is a sink: a bounded tracer that has stopped
        retaining events still feeds it every event."""
        tracer = Tracer("t", max_events=1)
        recorder = FlightRecorder(capacity=8)
        tracer.add_sink(recorder.on_event)
        tracer.vt_update(0.0, 0.0, None, reason="a")
        tracer.vt_update(1.0, 1.0, None, reason="b")
        tracer.fault(2.0, "worker_crash", worker=0)
        assert len(tracer) == 1  # tracer itself capped
        assert recorder.events_seen == 3
        (dump,) = recorder.dumps
        assert len(dump["ring"]) == 3


class TestAuditedSessionArtifacts:
    def test_export_run_writes_audit_artifacts(self, tmp_path):
        session = TraceSession(tmp_path, audit=AuditConfig(capacity=2.0))
        tracer = session.tracer("fig9 (wfq)")
        auditor = FairnessAuditor(session.audit, tracer)
        flight = FlightRecorder(capacity=8)
        tracer.add_sink(flight.on_event)
        auditor.on_sample(1.0, {"A": 0.0, "B": 1.0}, {"A": 0.5, "B": 0.5})
        tracer.fault(2.0, "worker_crash", worker=1)
        run_dir = session.export_run(tracer, auditor=auditor, flight=flight)
        report = json.loads((run_dir / "audit_report.json").read_text())
        assert report["monitors"]["lag"]["ever_tripped"] == ["A"]
        prom = (run_dir / "metrics.prom").read_text()
        assert f'run="{tracer.name}"' in prom
        assert "repro_audit_samples" in prom
        flight_payload = json.loads((run_dir / "flight_recorder.json").read_text())
        assert len(flight_payload["dumps"]) == 1

    def test_flight_artifact_omitted_without_dumps(self, tmp_path):
        session = TraceSession(tmp_path, audit=AuditConfig(capacity=2.0))
        tracer = session.tracer("quiet")
        auditor = FairnessAuditor(session.audit, tracer)
        flight = FlightRecorder(capacity=8)
        run_dir = session.export_run(tracer, auditor=auditor, flight=flight)
        assert (run_dir / "audit_report.json").exists()
        assert not (run_dir / "flight_recorder.json").exists()


class TestFig9Acceptance:
    """The paper's observable claim, as an auditor property: on the
    production workload WFQ and WF²Q give backlogged tenants bursty
    allocations, 2DFQ gives them smooth ones (Figs 5, 9)."""

    def test_bursty_auditor_separates_the_schedulers(self):
        config = dataclasses.replace(
            production_config(duration=3.0), sample_interval=0.02
        )
        specs = production_specs(
            num_random=20, include_fixed=True, named_mode="backlogged"
        )
        trace = production_trace(specs, config, open_loop_utilization=0.5)
        flagged = {}
        for name in ("wfq", "wf2q", "2dfq"):
            tracer = Tracer(f"fig9-audit-{name}", max_events=100)
            auditor = FairnessAuditor(AuditConfig(capacity=config.capacity), tracer)
            run_single(name, specs, config, trace=trace, tracer=tracer, auditor=auditor)
            flagged[name] = auditor.ever_tripped("bursty")
        assert flagged["wfq"], "WFQ must flag bursty allocations"
        assert flagged["wf2q"], "WF²Q must flag bursty allocations"
        assert flagged["2dfq"] == [], "2DFQ must stay quiet"
        # WFQ's starvation bursts are broader than WF²Q's per-request
        # oscillation: it should flag at least as many tenants.
        assert len(flagged["wfq"]) >= len(flagged["wf2q"])
