"""Unit tests for the fluid GPS reference server."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.simulator.gps import GPSReference


class TestSingleFlow:
    def test_full_capacity_to_lone_flow(self):
        gps = GPSReference(capacity=10.0)
        gps.arrive("A", 50.0, now=0.0)
        gps.advance(2.0)
        assert gps.service("A") == pytest.approx(20.0)
        assert gps.backlog("A") == pytest.approx(30.0)

    def test_flow_drains_and_freezes(self):
        gps = GPSReference(capacity=10.0)
        gps.arrive("A", 20.0, now=0.0)
        gps.advance(5.0)  # drains at t=2
        assert gps.service("A") == pytest.approx(20.0)
        assert gps.backlog("A") == 0.0
        assert gps.active_weight == 0.0

    def test_unknown_flow_has_zero_service(self):
        gps = GPSReference(capacity=1.0)
        assert gps.service("nobody") == 0.0
        assert gps.backlog("nobody") == 0.0


class TestSharing:
    def test_equal_split_between_two_flows(self):
        gps = GPSReference(capacity=10.0)
        gps.arrive("A", 100.0, now=0.0)
        gps.arrive("B", 100.0, now=0.0)
        gps.advance(4.0)
        assert gps.service("A") == pytest.approx(20.0)
        assert gps.service("B") == pytest.approx(20.0)

    def test_weighted_split(self):
        gps = GPSReference(capacity=12.0)
        gps.arrive("A", 100.0, now=0.0, weight=2.0)
        gps.arrive("B", 100.0, now=0.0, weight=1.0)
        gps.advance(3.0)
        assert gps.service("A") == pytest.approx(24.0)
        assert gps.service("B") == pytest.approx(12.0)

    def test_capacity_redistributes_after_drain(self):
        gps = GPSReference(capacity=10.0)
        gps.arrive("A", 10.0, now=0.0)   # drains at t=2 sharing 5/s
        gps.arrive("B", 100.0, now=0.0)
        gps.advance(4.0)
        # B: 5/s for 2s, then 10/s for 2s = 30.
        assert gps.service("A") == pytest.approx(10.0)
        assert gps.service("B") == pytest.approx(30.0)

    def test_late_arrival_joins_sharing(self):
        gps = GPSReference(capacity=10.0)
        gps.arrive("A", 100.0, now=0.0)
        gps.advance(1.0)
        assert gps.service("A") == pytest.approx(10.0)
        gps.arrive("B", 100.0, now=1.0)
        gps.advance(3.0)
        assert gps.service("A") == pytest.approx(20.0)
        assert gps.service("B") == pytest.approx(10.0)

    def test_work_conserved_total(self):
        gps = GPSReference(capacity=7.0)
        gps.arrive("A", 30.0, now=0.0)
        gps.arrive("B", 11.0, now=0.5)
        gps.arrive("C", 8.0, now=1.5)
        gps.advance(4.0)
        total = sum(gps.service(f) for f in "ABC")
        assert total == pytest.approx(7.0 * 4.0 - 7.0 * 0.0, rel=1e-9)

    def test_multiple_arrivals_same_flow_extend_backlog(self):
        gps = GPSReference(capacity=10.0)
        gps.arrive("A", 10.0, now=0.0)
        gps.arrive("A", 10.0, now=0.0)
        gps.advance(1.0)
        assert gps.backlog("A") == pytest.approx(10.0)


class TestValidation:
    def test_positive_capacity_required(self):
        with pytest.raises(ConfigurationError):
            GPSReference(0.0)

    def test_negative_cost_rejected(self):
        gps = GPSReference(1.0)
        with pytest.raises(ConfigurationError):
            gps.arrive("A", -1.0, now=0.0)

    def test_zero_cost_arrival_is_noop(self):
        gps = GPSReference(1.0)
        gps.arrive("A", 0.0, now=0.0)
        assert gps.active_weight == 0.0

    def test_rearrival_weight_mismatch_rejected(self):
        # A flow's weight is fixed at first arrival: silently keeping
        # the old weight would diverge from the fair-share reference
        # with no signal.
        gps = GPSReference(1.0)
        gps.arrive("A", 1.0, now=0.0, weight=2.0)
        with pytest.raises(ConfigurationError, match="re-arrived with weight"):
            gps.arrive("A", 1.0, now=0.5, weight=3.0)

    def test_rearrival_same_weight_allowed(self):
        gps = GPSReference(1.0)
        gps.arrive("A", 1.0, now=0.0, weight=2.0)
        gps.arrive("A", 1.0, now=0.5, weight=2.0)
        gps.advance(10.0)
        assert gps.service("A") == pytest.approx(2.0)

    def test_time_must_not_regress(self):
        gps = GPSReference(1.0)
        gps.advance(5.0)
        with pytest.raises(SimulationError):
            gps.advance(4.0)

    def test_idle_time_freezes_virtual_time(self):
        gps = GPSReference(10.0)
        gps.arrive("A", 10.0, now=0.0)
        gps.advance(10.0)
        v = gps.virtual_time
        gps.advance(20.0)
        assert gps.virtual_time == v


class TestCapacityChange:
    """``set_capacity``: the fleet-level fluid reference re-rates when
    healthy capacity changes (crash detected / server restored)."""

    def test_halving_capacity_halves_rates_from_now_on(self):
        gps = GPSReference(capacity=10.0)
        gps.arrive("A", 100.0, now=0.0)
        gps.arrive("B", 100.0, now=0.0)
        gps.advance(2.0)  # 10 each at full rate
        gps.set_capacity(5.0, now=2.0)
        gps.advance(6.0)  # +10 each over 4s at half rate
        assert gps.service("A") == pytest.approx(20.0)
        assert gps.service("B") == pytest.approx(20.0)

    def test_matches_single_rate_run_piecewise(self):
        # A capacity change is exact: the two-segment run agrees with
        # hand-computed piecewise fluid service, drains included.
        gps = GPSReference(capacity=10.0)
        gps.arrive("A", 15.0, now=0.0)
        gps.arrive("B", 100.0, now=0.0)
        gps.set_capacity(20.0, now=1.0)  # A has 10 left, B has 95
        gps.advance(2.0)
        # Segment 2: 10/s each; A drains at t=2 exactly.
        assert gps.service("A") == pytest.approx(15.0)
        assert gps.backlog("A") == pytest.approx(0.0)
        assert gps.service("B") == pytest.approx(15.0)
        gps.advance(3.0)  # B alone at 20/s
        assert gps.service("B") == pytest.approx(35.0)

    def test_restore_speeds_drain_back_up(self):
        gps = GPSReference(capacity=10.0)
        gps.arrive("A", 40.0, now=0.0)
        gps.set_capacity(2.0, now=1.0)   # crash detected: 30 left
        gps.set_capacity(10.0, now=2.0)  # restored: 28 left
        gps.advance(4.8)
        assert gps.service("A") == pytest.approx(40.0)
        assert gps.backlog("A") == 0.0

    def test_rejects_non_positive_capacity(self):
        gps = GPSReference(capacity=10.0)
        with pytest.raises(ConfigurationError):
            gps.set_capacity(0.0, now=1.0)
        with pytest.raises(ConfigurationError):
            gps.set_capacity(-5.0, now=1.0)


class TestLazyInvalidation:
    """Pin the stale-entry bookkeeping and heap compaction heuristic."""

    def test_rearrival_creates_stale_entry(self):
        gps = GPSReference(capacity=10.0, purge_threshold=1000)
        gps.arrive("A", 10.0, now=0.0)
        assert gps.stale_entries == 0
        gps.arrive("A", 10.0, now=0.0)
        assert gps.stale_entries == 1
        assert gps.heap_size == 2

    def test_peek_drops_stale_entries(self):
        gps = GPSReference(capacity=10.0, purge_threshold=1000)
        # The front flow's entry stays at the heap top, so A's superseded
        # entries pile up behind it instead of being popped on peek.
        gps.arrive("front", 1.0, now=0.0)
        for _ in range(4):
            gps.arrive("A", 10.0, now=0.0)
        assert gps.stale_entries == 3
        gps.advance(10.0)  # drains past the stale entries
        assert gps.stale_entries == 0

    def test_compaction_fires_when_stale_outnumber_live(self):
        gps = GPSReference(capacity=10.0, purge_threshold=2)
        gps.arrive("A", 1.0, now=0.0)
        gps.arrive("B", 1.0, now=0.0)
        for _ in range(4):
            gps.arrive("A", 1.0, now=0.0)
        # 4 stale entries > threshold (2) and > live (2): compacted.
        assert gps.purges >= 1
        assert gps.stale_entries == 0
        assert gps.heap_size == 2

    def test_heap_bounded_under_rearrival_churn(self):
        gps = GPSReference(capacity=1000.0, purge_threshold=8)
        gps.arrive("front", 0.001, now=0.0)  # keeps the heap top live
        for _ in range(1000):
            gps.arrive("A", 1.0, now=0.0)
            gps.arrive("B", 1.0, now=0.0)
        live = 3
        assert gps.heap_size <= 2 * live + gps.purge_threshold + 2
        assert gps.purges > 0

    def test_service_identical_with_and_without_compaction(self):
        """Compaction must not perturb the fluid numerics."""

        def drive(threshold):
            gps = GPSReference(capacity=10.0, purge_threshold=threshold)
            now = 0.0
            for i in range(200):
                now += 0.01
                gps.arrive("A", 0.5, now=now, weight=2.0)
                if i % 2 == 0:
                    gps.arrive("B", 0.3, now=now)
                if i % 7 == 0:
                    gps.arrive("C", 1.1, now=now)
            gps.advance(now + 1.0)
            return {f: gps.service(f) for f in "ABC"}

        eager = drive(threshold=1)
        lazy = drive(threshold=10_000)
        assert eager == lazy

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            GPSReference(1.0, purge_threshold=0)
