"""Engine, suppression, and CLI tests for repro.analysis."""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import Analyzer
from repro.analysis.cli import main
from repro.analysis.engine import PARSE_ERROR_CODE, _module_name
from repro.analysis.suppress import UNUSED_SUPPRESSION_CODE, SuppressionIndex

FIXTURES = os.path.join(os.path.dirname(__file__), "analysis_fixtures")
SRC_REPRO = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src", "repro"
)


# -- the gate: the real tree is clean ------------------------------------------


def test_real_tree_is_clean() -> None:
    """`python -m repro.analysis src/repro` exits 0: the merged tree has
    no findings under the full catalogue (including unused-suppression
    accounting for the inventoried wall-clock waivers)."""
    result = Analyzer().run([SRC_REPRO])
    assert result.files_analyzed > 50
    assert result.findings == []
    assert result.clean


# -- suppressions --------------------------------------------------------------


def test_suppression_consumes_matching_finding_and_reports_stale_ones() -> None:
    result = Analyzer().run([os.path.join(FIXTURES, "suppression")])
    triples = sorted((f.code, f.line) for f in result.findings)
    # Line 5's assert is silenced (no RPR030 anywhere); lines 10/14/18/22
    # carry a stale, malformed, unknown-code, and stale suppression.
    assert triples == [
        (UNUSED_SUPPRESSION_CODE, 10),
        (UNUSED_SUPPRESSION_CODE, 14),
        (UNUSED_SUPPRESSION_CODE, 18),
        (UNUSED_SUPPRESSION_CODE, 22),
    ]
    by_line = {f.line: f.message for f in result.findings}
    assert "unused suppression" in by_line[10]
    assert "malformed" in by_line[14]
    assert "unknown rule code RPR999" in by_line[18]
    assert "unused suppression" in by_line[22]


def test_suppression_index_ignores_strings_and_matches_codes() -> None:
    source = (
        "x = '# repro: ignore[RPR030]'\n"
        "y = 1  # repro: ignore[RPR001, RPR030]\n"
    )
    index = SuppressionIndex.from_source(source)
    assert len(index) == 1  # the string literal is not a comment
    assert index.suppressed(2, "RPR001")
    assert index.suppressed(2, "RPR030")
    assert not index.suppressed(2, "RPR011")
    assert not index.suppressed(1, "RPR001")


def test_select_distinguishes_filtered_codes_from_unknown_ones() -> None:
    # Under --select RPR030 the RPR001 suppression on line 22 belongs to
    # a filtered-out catalogue rule and is skipped, but RPR999 on line 18
    # is claimed by no rule at all, so it stays reported as unknown.
    result = Analyzer(select={"RPR030", UNUSED_SUPPRESSION_CODE}).run(
        [os.path.join(FIXTURES, "suppression")]
    )
    assert sorted((f.code, f.line) for f in result.findings) == [
        (UNUSED_SUPPRESSION_CODE, 10),
        (UNUSED_SUPPRESSION_CODE, 14),
        (UNUSED_SUPPRESSION_CODE, 18),
    ]
    by_line = {f.line: f.message for f in result.findings}
    assert "unknown rule code RPR999" in by_line[18]


def test_ignore_disables_a_rule() -> None:
    result = Analyzer(ignore={"RPR030", UNUSED_SUPPRESSION_CODE}).run(
        [os.path.join(FIXTURES, "purity")]
    )
    assert result.findings == []


# -- engine mechanics ----------------------------------------------------------


def test_parse_error_is_reported_not_raised(tmp_path) -> None:
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n", encoding="utf-8")
    result = Analyzer().run([str(bad)])
    assert [f.code for f in result.findings] == [PARSE_ERROR_CODE]
    assert result.files_analyzed == 1


def test_module_name_walks_init_chain(tmp_path) -> None:
    pkg = tmp_path / "outer" / "inner"
    pkg.mkdir(parents=True)
    (tmp_path / "outer" / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "mod.py").write_text("", encoding="utf-8")
    assert _module_name(str(pkg / "mod.py")) == "outer.inner.mod"
    assert _module_name(str(pkg / "__init__.py")) == "outer.inner"
    # tmp_path itself has no __init__.py, so the walk stops there.
    assert _module_name(str(tmp_path / "outer" / "__init__.py")) == "outer"


def test_result_to_dict_shape() -> None:
    result = Analyzer().run([os.path.join(FIXTURES, "purity")])
    payload = result.to_dict()
    assert payload["version"] == 1
    assert payload["counts"] == {"RPR030": 1}
    (record,) = payload["findings"]
    assert record["code"] == "RPR030"
    assert record["line"] == 5
    assert record["rule"] == "runtime-assert"


def test_findings_are_sorted_and_deterministic() -> None:
    paths = [os.path.join(FIXTURES, d) for d in ("purity", "wallclock", "rng")]
    first = Analyzer().run(paths)
    second = Analyzer().run(list(reversed(paths)))
    assert [f.sort_key for f in first.findings] == sorted(
        f.sort_key for f in first.findings
    )
    assert [f.to_dict() for f in first.findings] == [
        f.to_dict() for f in second.findings
    ]


# -- CLI -----------------------------------------------------------------------


def test_cli_exit_codes_and_text_output(capsys) -> None:
    assert main([SRC_REPRO]) == 0
    out = capsys.readouterr().out
    assert "clean:" in out and "0 findings" in out

    assert main([os.path.join(FIXTURES, "purity")]) == 1
    out = capsys.readouterr().out
    assert "RPR030" in out
    assert "asserts.py:5:" in out
    assert "1 finding(s)" in out


def test_cli_json_output(capsys) -> None:
    assert main(["--format", "json", os.path.join(FIXTURES, "purity")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"] == {"RPR030": 1}


def test_cli_select_filters_rules(capsys) -> None:
    # wallclock fixture has only RPR001 findings; selecting RPR030 runs
    # nothing that fires there.
    assert main(["--select", "RPR030", os.path.join(FIXTURES, "wallclock")]) == 0
    capsys.readouterr()


def test_cli_list_rules(capsys) -> None:
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in (
        "RPR000",
        "RPR001",
        "RPR002",
        "RPR010",
        "RPR011",
        "RPR012",
        "RPR020",
        "RPR021",
        "RPR030",
        "RPR090",
    ):
        assert code in out


def test_cli_rejects_missing_path() -> None:
    with pytest.raises(SystemExit) as exc:
        main(["does/not/exist"])
    assert exc.value.code == 2
