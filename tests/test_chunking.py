"""Tests for request chunking (the paper's §7 alternative approach)."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import TraceRecord, chunk_trace


def record(cost, time=0.0, tenant="A", api="x"):
    return TraceRecord(time, tenant, api, cost)


class TestChunking:
    def test_small_requests_untouched(self):
        trace = [record(50.0), record(100.0)]
        assert chunk_trace(trace, max_cost=100.0) == trace

    def test_large_request_split_exactly(self):
        out = chunk_trace([record(250.0)], max_cost=100.0)
        assert [r.cost for r in out] == [100.0, 100.0, 50.0]
        assert {r.time for r in out} == {0.0}
        assert {r.tenant for r in out} == {"A"}

    def test_total_cost_preserved_without_overhead(self):
        trace = [record(c) for c in (1.0, 99.0, 1000.0, 12345.0)]
        out = chunk_trace(trace, max_cost=64.0)
        assert sum(r.cost for r in out) == pytest.approx(
            sum(r.cost for r in trace)
        )

    def test_overhead_charged_per_chunk(self):
        out = chunk_trace([record(200.0)], max_cost=100.0, overhead=5.0)
        assert [r.cost for r in out] == [105.0, 105.0]

    def test_max_chunk_bound(self):
        out = chunk_trace([record(1e6)], max_cost=128.0)
        assert max(r.cost for r in out) <= 128.0
        assert len(out) == 7813  # ceil(1e6 / 128)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            chunk_trace([], max_cost=0.0)
        with pytest.raises(WorkloadError):
            chunk_trace([], max_cost=1.0, overhead=-1.0)

    def test_chunking_reduces_cost_variation(self):
        """The point of §7's alternative: after chunking, the cost range
        collapses to ~1 decade regardless of the original spread."""
        import numpy as np

        trace = [record(10.0 ** k) for k in range(6)]  # 1 .. 1e5
        out = chunk_trace(trace, max_cost=100.0)
        costs = np.array([r.cost for r in out])
        assert np.log10(costs.max() / costs.min()) <= 2.0
