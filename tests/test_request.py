"""Unit tests for the Request model."""

import pytest

from repro.core.request import Request, RequestPhase

from conftest import make_request


class TestRequestBasics:
    def test_defaults(self):
        r = Request(tenant_id="A", cost=2.0)
        assert r.tenant_id == "A"
        assert r.cost == 2.0
        assert r.api == "default"
        assert r.weight == 1.0
        assert r.phase == RequestPhase.QUEUED
        assert r.thread_id == -1

    def test_seqnos_monotonic(self):
        a, b, c = (make_request() for _ in range(3))
        assert a.seqno < b.seqno < c.seqno

    def test_key_groups_by_tenant_and_api(self):
        r = make_request(tenant="T1", api="G")
        assert r.key == ("T1", "G")

    def test_repr_mentions_tenant_and_api(self):
        r = make_request(tenant="T9", api="K", cost=123.0)
        text = repr(r)
        assert "T9" in text and "K" in text and "123" in text


class TestRequestTimings:
    def test_latency_after_completion(self):
        r = make_request()
        r.arrival_time = 1.0
        r.dispatch_time = 2.5
        r.completion_time = 4.0
        assert r.latency == pytest.approx(3.0)
        assert r.queueing_delay == pytest.approx(1.5)

    def test_latency_before_completion_raises(self):
        r = make_request()
        r.arrival_time = 1.0
        with pytest.raises(ValueError):
            _ = r.latency

    def test_queueing_delay_before_dispatch_raises(self):
        r = make_request()
        r.arrival_time = 1.0
        with pytest.raises(ValueError):
            _ = r.queueing_delay

    def test_latency_before_arrival_raises(self):
        r = make_request()
        r.completion_time = 5.0
        with pytest.raises(ValueError):
            _ = r.latency
