"""Unit tests for the observability metrics registry."""

import pytest

from repro.obs import HOST_CLOCK, Counter, Gauge, MetricsRegistry, Timer


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_name(self):
        assert Counter("scheduler.dispatches").name == "scheduler.dispatches"


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("g")
        gauge.set(3.5)
        gauge.set(1.25)
        assert gauge.value == 1.25


class TestTimer:
    def test_context_manager_accumulates(self):
        timer = Timer("t")
        with timer:
            pass
        with timer:
            pass
        assert timer.count == 2
        assert timer.total >= 0.0
        assert timer.last >= 0.0
        assert timer.total >= timer.last

    def test_explicit_start_stop(self):
        timer = Timer("t")
        timer.start()
        elapsed = timer.stop()
        assert elapsed == timer.last
        assert timer.count == 1


class TestInjectableClock:
    def test_timer_reads_through_injected_clock(self):
        now = {"t": 10.0}
        timer = Timer("t", clock=lambda: now["t"])
        timer.start()
        now["t"] = 12.5
        assert timer.stop() == pytest.approx(2.5)
        assert timer.total == pytest.approx(2.5)

    def test_timer_defaults_to_host_clock(self):
        assert Timer("t").clock is HOST_CLOCK

    def test_registry_clock_applies_to_new_timers(self):
        clock = lambda: 0.0  # noqa: E731
        registry = MetricsRegistry(clock=clock)
        assert registry.timer("a").clock is clock

    def test_set_clock_rewires_existing_timers(self):
        registry = MetricsRegistry()
        timer = registry.timer("a")
        now = {"t": 0.0}
        registry.set_clock(lambda: now["t"])
        timer.start()
        now["t"] = 3.0
        assert timer.stop() == pytest.approx(3.0)

    def test_set_clock_none_restores_host_clock(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        timer = registry.timer("a")
        registry.set_clock(None)
        assert timer.clock is HOST_CLOCK
        assert registry.timer("b").clock is HOST_CLOCK


class TestInstrumentsView:
    def test_yields_typed_triples_in_registration_order(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2.0)
        registry.timer("t")
        triples = [(kind, name) for kind, name, _ in registry.instruments()]
        assert triples == [("counter", "c"), ("gauge", "g"), ("timer", "t")]


class TestMetricsRegistry:
    def test_counter_is_lazily_created_and_cached(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        counter.inc()
        assert registry.counter("a") is counter
        assert registry.counter("a").value == 1

    def test_name_collision_across_types_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(Exception):
            registry.gauge("x")

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("depth").set(7.0)
        timer = registry.timer("span")
        with timer:
            pass
        snap = registry.snapshot()
        assert snap["hits"] == 3
        assert snap["depth"] == 7.0
        assert snap["span"]["count"] == 1
        assert snap["span"]["total"] >= 0.0
        assert snap["span"]["mean"] == pytest.approx(snap["span"]["total"])

    def test_snapshot_is_a_copy(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        snap = registry.snapshot()
        registry.counter("n").inc()
        assert snap["n"] == 1
