"""Unit tests for the discrete-event simulation loop."""

import pytest

from repro.errors import SimulationError
from repro.simulator.clock import Simulation


class TestScheduling:
    def test_at_runs_in_order(self):
        sim = Simulation()
        seen = []
        sim.at(2.0, lambda: seen.append(("b", sim.now)))
        sim.at(1.0, lambda: seen.append(("a", sim.now)))
        sim.run()
        assert seen == [("a", 1.0), ("b", 2.0)]

    def test_after_is_relative(self):
        sim = Simulation()
        seen = []
        sim.at(1.0, lambda: sim.after(0.5, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [1.5]

    def test_past_event_rejected(self):
        sim = Simulation()
        sim.at(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulation().after(-1.0, lambda: None)

    def test_cancel(self):
        sim = Simulation()
        seen = []
        handle = sim.at(1.0, lambda: seen.append("x"))
        sim.cancel(handle)
        sim.run()
        assert seen == []


class TestRunSemantics:
    def test_until_bounds_execution(self):
        sim = Simulation()
        seen = []
        for t in (1.0, 2.0, 3.0):
            sim.at(t, seen.append, t)
        end = sim.run(until=2.5)
        assert seen == [1.0, 2.0]
        assert end == 2.5  # time advances exactly to `until`
        assert sim.pending_events == 1

    def test_until_advances_past_last_event(self):
        sim = Simulation()
        sim.at(1.0, lambda: None)
        assert sim.run(until=10.0) == 10.0

    def test_resume_after_until(self):
        sim = Simulation()
        seen = []
        for t in (1.0, 3.0):
            sim.at(t, seen.append, t)
        sim.run(until=2.0)
        sim.run()
        assert seen == [1.0, 3.0]

    def test_max_events(self):
        sim = Simulation()
        for t in range(10):
            sim.at(float(t + 1), lambda: None)
        sim.run(max_events=4)
        assert sim.events_processed == 4

    def test_stop_from_callback(self):
        sim = Simulation()
        seen = []
        sim.at(1.0, lambda: (seen.append(1), sim.stop()))
        sim.at(2.0, lambda: seen.append(2))
        sim.run()
        assert seen == [1]

    def test_reentrant_run_rejected(self):
        sim = Simulation()
        failure = []

        def recurse():
            try:
                sim.run()
            except SimulationError:
                failure.append(True)

        sim.at(1.0, recurse)
        sim.run()
        assert failure == [True]

    def test_simultaneous_events_fifo(self):
        sim = Simulation()
        seen = []
        for i in range(5):
            sim.at(1.0, seen.append, i)
        sim.run()
        assert seen == [0, 1, 2, 3, 4]
