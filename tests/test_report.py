"""Additional tests for report rendering and the build helpers."""

import pytest

from repro.core import make_scheduler
from repro.experiments.report import format_table, sparkline
from repro.simulator import Simulation, ThreadPoolServer
from repro.workloads import TraceRecord, attach_trace


class TestFormatTable:
    def test_precision_parameter(self):
        text = format_table(["x"], [[3.14159265]], precision=2)
        assert "3.1" in text and "3.1415" not in text

    def test_column_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        # All rows share the same width.
        assert len({len(line) for line in lines}) == 1

    def test_mixed_types(self):
        text = format_table(["a", "b"], [[1, "x"], [2.5, None]])
        assert "None" in text and "2.5" in text


class TestSparkline:
    def test_monotone_series(self):
        from repro.experiments.report import _SPARK_CHARS

        line = sparkline(list(range(10)))
        levels = [_SPARK_CHARS.index(c) for c in line]
        assert levels == sorted(levels)

    def test_single_value(self):
        assert len(sparkline([42.0])) == 1


class TestAttachTrace:
    def test_replays_and_weights(self):
        sim = Simulation()
        scheduler = make_scheduler("wfq", num_threads=1, thread_rate=10.0)
        server = ThreadPoolServer(
            sim, scheduler, num_threads=1, rate=10.0, refresh_interval=None
        )
        weights = []
        server.on_submit(lambda r: weights.append(r.weight))
        trace = [TraceRecord(0.1, "A", "x", 1.0), TraceRecord(0.2, "B", "y", 2.0)]
        source = attach_trace(server, trace, weight=2.5)
        sim.run()
        assert source.submitted == 2
        assert weights == [2.5, 2.5]
        assert server.completed_requests == 2

    def test_speed_applies(self):
        sim = Simulation()
        scheduler = make_scheduler("wfq", num_threads=1, thread_rate=100.0)
        server = ThreadPoolServer(
            sim, scheduler, num_threads=1, rate=100.0, refresh_interval=None
        )
        times = []
        server.on_submit(lambda r: times.append(sim.now))
        attach_trace(server, [TraceRecord(4.0, "A", "x", 1.0)], speed=4.0)
        sim.run()
        assert times == [pytest.approx(1.0)]
