"""Tests for the experiment harness (scaled-down runs)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.expensive_requests import (
    SMALL_PROBE,
    expensive_requests_config,
    occupancy_expensive_fraction,
    run_expensive_requests,
    sigma_vs_expensive,
    small_tenant_series,
)
from repro.experiments.report import format_named_series, format_table, sparkline
from repro.experiments.runner import run_comparison, run_single
from repro.experiments.suite import (
    SuiteParameters,
    run_suite,
    sample_experiment,
)
from repro.workloads.synthetic import expensive_requests_population


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(
                name="x", schedulers=(), num_threads=2, thread_rate=1.0,
                duration=1.0,
            )
        with pytest.raises(ConfigurationError):
            ExperimentConfig(
                name="x", schedulers=("wfq",), num_threads=0, thread_rate=1.0,
                duration=1.0,
            )
        with pytest.raises(ConfigurationError):
            ExperimentConfig(
                name="x", schedulers=("wfq",), num_threads=1, thread_rate=1.0,
                duration=1.0, warmup=1.0,
            )

    def test_initial_estimate_applied_to_e_variants_only(self):
        config = ExperimentConfig(
            name="x", schedulers=("wfq", "wfq-e"), num_threads=1,
            thread_rate=1.0, duration=1.0, initial_estimate=500.0,
        )
        assert config.kwargs_for("wfq") == {}
        assert config.kwargs_for("wfq-e") == {"initial_estimate": 500.0}

    def test_explicit_kwargs_win(self):
        config = ExperimentConfig(
            name="x", schedulers=("wfq-e",), num_threads=1, thread_rate=1.0,
            duration=1.0, initial_estimate=500.0,
            scheduler_kwargs={"wfq-e": {"initial_estimate": 7.0}},
        )
        assert config.kwargs_for("wfq-e") == {"initial_estimate": 7.0}

    def test_capacity(self):
        config = ExperimentConfig(
            name="x", schedulers=("wfq",), num_threads=4, thread_rate=100.0,
            duration=1.0,
        )
        assert config.capacity == 400.0


SMALL_CONFIG = expensive_requests_config(duration=2.0, num_threads=4,
                                         thread_rate=100.0)


class TestRunner:
    def test_run_single_produces_metrics(self):
        specs = expensive_requests_population(num_small=5, total=10)
        metrics = run_single("2dfq", specs, SMALL_CONFIG)
        assert SMALL_PROBE in metrics.tenants()
        assert metrics.latency_stats(SMALL_PROBE).count > 0

    def test_comparison_runs_all_schedulers(self):
        specs = expensive_requests_population(num_small=5, total=10)
        result = run_comparison(specs, SMALL_CONFIG)
        assert result.scheduler_names == ["wfq", "wf2q", "2dfq"]
        assert result.fair_rate() == pytest.approx(400.0 / 10)

    def test_closed_loop_workload_identical_across_schedulers(self):
        """Same seed => identical per-tenant cost sequences.  (The
        *number* dispatched differs per scheduler -- closed loops are
        scheduler-paced -- but each tenant's stream is the same.)"""
        specs = expensive_requests_population(num_small=2, total=4)
        result = run_comparison(specs, SMALL_CONFIG)
        prefix = {}
        for name, run in result.runs.items():
            ordered = sorted(run.dispatch_log, key=lambda r: (r.start, r.thread_id))
            per_tenant = {}
            for record in ordered:
                per_tenant.setdefault(record.tenant_id, []).append(
                    round(record.cost, 9)
                )
            prefix[name] = {t: seq[:10] for t, seq in per_tenant.items()}
        for tenant, seq in prefix["wfq"].items():
            assert prefix["2dfq"][tenant][: len(seq)][: 10] == seq[:10]


class TestFigure8Experiment:
    def test_shape_sigma_ordering(self):
        """The headline Figure 8 shape at reduced scale: sigma(lag) of a
        small tenant is much lower under 2DFQ than WFQ.  Needs real
        contention -- several tenants per thread, as in the paper's
        100 tenants on 16 threads."""
        config = expensive_requests_config(duration=4.0, num_threads=8)
        result = run_expensive_requests(num_expensive=20, total_tenants=40,
                                        config=config)
        fair = result.fair_rate()
        sigma = {
            name: run.lag_sigma(SMALL_PROBE, reference_rate=fair)
            for name, run in result.runs.items()
        }
        assert sigma["2dfq"] < sigma["wfq"] / 3
        assert sigma["2dfq"] < sigma["wf2q"]

    def test_partitioning_only_under_2dfq(self):
        config = expensive_requests_config(duration=4.0, num_threads=8)
        result = run_expensive_requests(num_expensive=20, total_tenants=40,
                                        config=config)
        frac_2dfq = occupancy_expensive_fraction(result["2dfq"], 8)
        # Under 2DFQ the low-index threads are expensive-dominated and
        # the top threads run (almost) no expensive requests at all.
        assert frac_2dfq[0] > 0.7
        assert frac_2dfq[-1] < 0.1
        # The baselines spread expensive requests over every thread.
        frac_wfq = occupancy_expensive_fraction(result["wfq"], 8)
        assert frac_wfq.min() > 0.2

    def test_series_extraction(self):
        config = expensive_requests_config(duration=2.0)
        result = run_expensive_requests(num_expensive=8, total_tenants=16,
                                        config=config)
        series = small_tenant_series(result)
        for name in ("wfq", "wf2q", "2dfq"):
            assert series[name]["times"].size == 20
            assert series[name]["service_rate"].size == 20

    def test_sigma_sweep_rows(self):
        config = expensive_requests_config(duration=1.0, num_threads=4,
                                           thread_rate=200.0)
        sweep = sigma_vs_expensive(
            expensive_counts=(0, 8), total_tenants=16, config=config
        )
        rows = sweep.rows()
        assert len(rows) == 2
        assert rows[0][0] == 0 and rows[1][0] == 8
        assert all(len(row) == 4 for row in rows)


class TestSuite:
    def test_sampling_is_deterministic_and_in_range(self):
        params = SuiteParameters(num_experiments=5, seed=3)
        a = sample_experiment(2, params)
        b = sample_experiment(2, params)
        assert a == b
        assert params.threads[0] <= a.num_threads <= params.threads[1]
        assert a.num_unpredictable <= a.num_replay

    def test_tiny_suite_runs(self):
        params = SuiteParameters(
            num_experiments=2,
            threads=(2, 4),
            replay_tenants=(5, 10),
            backlogged_tenants=(0, 2),
            expensive_tenants=(0, 2),
            unpredictable_tenants=(0, 5),
            duration=1.0,
            thread_rate=1.0e5,
            seed=1,
        )
        result = run_suite(params, tenants=("T1", "T10"))
        assert len(result.p99) == 2
        speedups = result.speedups("wfq-e", tenants=("T1",))
        assert isinstance(speedups["T1"], list)

    def test_speedup_aggregation(self):
        params = SuiteParameters(num_experiments=1)
        from repro.experiments.suite import SuiteResult

        result = SuiteResult(params=params)
        result.p99 = [
            {"wfq-e": {"T1": 0.01}, "2dfq-e": {"T1": 0.001}},
            {"wfq-e": {"T1": 0.02}, "2dfq-e": {"T1": 0.002}},
            {"wfq-e": {"T1": float("nan")}, "2dfq-e": {"T1": 0.01}},
        ]
        values = result.speedups("wfq-e", tenants=("T1",))["T1"]
        assert values == pytest.approx([10.0, 10.0])
        assert result.median_speedup("wfq-e", "T1") == pytest.approx(10.0)


class TestReport:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.34567], ["x", 3]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "2.346" in text

    def test_sparkline_shape(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] == " " and line[-1] == "@"
        assert sparkline([]) == ""
        assert sparkline([5.0, 5.0]) == "  "

    def test_named_series(self):
        text = format_named_series("title", {"wfq": [1.0, 2.0], "none": []})
        assert "title" in text
        assert "wfq" in text
        assert "(no data)" in text
