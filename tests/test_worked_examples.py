"""The paper's worked scheduling examples, verified entry-for-entry.

Figures 1, 5 and 6: four backlogged tenants on two unit-rate threads;
A and B send size-1 requests, C and D size-4 (size-10 for Figure 1).
"""

import pytest

from repro.experiments.schedule_examples import (
    gap_statistics,
    render_schedule,
    worked_example,
)


def labels(slots, thread):
    return [s.label for s in slots if s.thread_id == thread]


class TestFigure5WFQ:
    """§4: "WFQ uses both threads to execute 4 requests each for A and
    B.  Only at t=4 do C and D have the lowest finish time causing WFQ
    to simultaneously execute one request each for C and D, occupying
    the thread pool until t=8." """

    def test_schedule_prefix(self):
        slots = worked_example("wfq")
        assert labels(slots, 0)[:5] == ["a1", "a2", "a3", "a4", "c1"]
        assert labels(slots, 1)[:5] == ["b1", "b2", "b3", "b4", "d1"]

    def test_c_and_d_block_pool_simultaneously(self):
        slots = worked_example("wfq")
        c1 = next(s for s in slots if s.label == "c1")
        d1 = next(s for s in slots if s.label == "d1")
        assert c1.start == pytest.approx(4.0)
        assert d1.start == pytest.approx(4.0)

    def test_small_tenants_starved_during_block(self):
        slots = worked_example("wfq")
        # No A/B request starts in (4, 8): the pool is blocked.
        gap_starts = [
            s.start for s in slots if s.tenant_id in ("A", "B") and 4.0 < s.start < 8.0
        ]
        assert gap_starts == []


class TestFigure5WF2Q:
    """Figure 5d: WF2Q alternates small bursts and large blocks because
    the second requests of A and B are not yet eligible at t=1."""

    def test_schedule_prefix(self):
        slots = worked_example("wf2q")
        assert labels(slots, 0)[:7] == ["a1", "c1", "a2", "a3", "a4", "a5", "c2"]
        assert labels(slots, 1)[:7] == ["b1", "d1", "b2", "b3", "b4", "b5", "d2"]

    def test_large_requests_start_at_t1(self):
        slots = worked_example("wf2q")
        c1 = next(s for s in slots if s.label == "c1")
        d1 = next(s for s in slots if s.label == "d1")
        assert c1.start == pytest.approx(1.0)
        assert d1.start == pytest.approx(1.0)


class TestFigure6TwoDFQ:
    """Figure 6b: 2DFQ partitions -- C and D run on W0 only, while A and
    B alternate on W1 with no burst gaps."""

    def test_schedule_prefix(self):
        slots = worked_example("2dfq")
        assert labels(slots, 0)[:4] == ["a1", "c1", "d1", "c2"]
        assert labels(slots, 1)[:8] == [
            "b1", "a2", "b2", "a3", "b3", "a4", "b4", "a5",
        ]

    def test_large_tenants_confined_to_low_thread(self):
        slots = worked_example("2dfq")
        for s in slots:
            if s.tenant_id in ("C", "D") and s.start > 0:
                assert s.thread_id == 0

    def test_smooth_gaps_for_small_tenants(self):
        slots = worked_example("2dfq")
        for tenant in ("A", "B"):
            _, max_gap = gap_statistics(slots, tenant)
            assert max_gap <= 2.0 + 1e-9

    def test_bursty_gaps_under_baselines(self):
        for name in ("wfq", "wf2q"):
            slots = worked_example(name)
            _, max_gap = gap_statistics(slots, "A")
            assert max_gap >= 4.0, f"{name} unexpectedly smooth"


class TestFigure1Variant:
    """Figure 1: size-10 large requests; smooth schedule has ~1s gaps
    for tenant A, the bursty one ~10s gaps."""

    def test_gap_separation(self):
        bursty = worked_example("wfq", horizon=60.0, large_cost=10.0)
        smooth = worked_example("2dfq", horizon=60.0, large_cost=10.0)
        _, bursty_gap = gap_statistics(bursty, "A")
        _, smooth_gap = gap_statistics(smooth, "A")
        assert bursty_gap >= 10.0
        assert smooth_gap <= 2.0

    def test_long_run_fairness_of_both(self):
        # Both schedules are fair over long periods (Figure 1 caption).
        for name in ("wfq", "2dfq"):
            slots = worked_example(name, horizon=200.0, large_cost=10.0)
            done = {}
            for s in slots:
                if s.end <= 200.0:
                    done[s.tenant_id] = done.get(s.tenant_id, 0.0) + (s.end - s.start)
            assert done["A"] == pytest.approx(done["C"], rel=0.2)


class TestRendering:
    def test_render_lines(self):
        slots = worked_example("2dfq")
        lines = render_schedule(slots)
        assert lines[0].startswith("W0 | a1 c1 d1")
        assert lines[1].startswith("W1 | b1 a2 b2")

    def test_msf2q_and_sfq_match_baselines(self):
        """§6: MSF2Q and SFQ schedules are 'visually indistinguishable'
        from WF2Q / WFQ on these workloads."""
        wf2q = [(s.thread_id, s.label) for s in worked_example("wf2q")]
        msf2q = [(s.thread_id, s.label) for s in worked_example("msf2q")]
        assert wf2q == msf2q
