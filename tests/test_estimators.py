"""Unit tests for cost estimators (paper §5)."""

import pytest

from repro.errors import ConfigurationError
from repro.estimation import (
    EMAEstimator,
    LastValueEstimator,
    OracleEstimator,
    PessimisticEstimator,
    WindowedMeanEstimator,
    make_estimator,
)

from conftest import make_request


class TestOracle:
    def test_returns_true_cost(self):
        est = OracleEstimator()
        assert est.estimate(make_request(cost=42.0)) == 42.0

    def test_observe_is_noop(self):
        est = OracleEstimator()
        r = make_request(cost=7.0)
        est.observe(r, 100.0)
        assert est.estimate(r) == 7.0


class TestEMA:
    def test_cold_start_uses_initial(self):
        est = EMAEstimator(alpha=0.9, initial_estimate=5.0)
        assert est.estimate(make_request()) == 5.0

    def test_first_observation_seeds_state(self):
        est = EMAEstimator(alpha=0.9)
        r = make_request(tenant="T", api="A")
        est.observe(r, 100.0)
        assert est.estimate(r) == pytest.approx(100.0)

    def test_ema_update_rule(self):
        est = EMAEstimator(alpha=0.9)
        r = make_request(tenant="T", api="A")
        est.observe(r, 100.0)
        est.observe(r, 200.0)
        # 0.9 * 100 + 0.1 * 200 = 110
        assert est.estimate(r) == pytest.approx(110.0)

    def test_state_keyed_per_tenant_per_api(self):
        est = EMAEstimator()
        est.observe(make_request(tenant="T1", api="A"), 10.0)
        est.observe(make_request(tenant="T1", api="B"), 1000.0)
        est.observe(make_request(tenant="T2", api="A"), 99.0)
        assert est.peek("T1", "A") == pytest.approx(10.0)
        assert est.peek("T1", "B") == pytest.approx(1000.0)
        assert est.peek("T2", "A") == pytest.approx(99.0)

    def test_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            EMAEstimator(alpha=1.0)
        with pytest.raises(ConfigurationError):
            EMAEstimator(alpha=-0.1)

    def test_reset(self):
        est = EMAEstimator(initial_estimate=3.0)
        r = make_request()
        est.observe(r, 50.0)
        est.reset()
        assert est.estimate(r) == 3.0

    def test_slow_adaptation_with_high_alpha(self):
        # alpha = 0.99 adapts slowly -- the paper's feedback-delay story.
        est = EMAEstimator(alpha=0.99)
        r = make_request(tenant="T", api="K")
        est.observe(r, 1.0)
        for _ in range(10):
            est.observe(r, 1000.0)
        assert est.estimate(r) < 120.0  # still far below the new regime


class TestPessimistic:
    def test_tracks_maximum(self):
        est = PessimisticEstimator(alpha=0.99)
        r = make_request(tenant="T", api="G")
        est.observe(r, 10.0)
        est.observe(r, 1000.0)
        assert est.estimate(r) == pytest.approx(1000.0)

    def test_alpha_decay_below_maximum(self):
        est = PessimisticEstimator(alpha=0.9)
        r = make_request(tenant="T", api="G")
        est.observe(r, 1000.0)
        est.observe(r, 1.0)  # max(0.9 * 1000, 1) = 900
        assert est.estimate(r) == pytest.approx(900.0)

    def test_immediate_jump_on_larger_cost(self):
        # Figure 7 line 30: a bigger measurement replaces L_max at once.
        est = PessimisticEstimator(alpha=0.99)
        r = make_request(tenant="T", api="G")
        est.observe(r, 5.0)
        est.observe(r, 5000.0)
        assert est.estimate(r) == pytest.approx(5000.0)

    def test_estimate_stays_pessimistic_for_bimodal_costs(self):
        # An unpredictable tenant alternating cheap/expensive keeps a
        # near-maximum estimate -- the isolation mechanism of 2DFQ^E.
        est = PessimisticEstimator(alpha=0.99)
        r = make_request(tenant="T10", api="G")
        est.observe(r, 1.0e6)
        for _ in range(20):
            est.observe(r, 1000.0)
        assert est.estimate(r) >= 0.99**20 * 1.0e6

    def test_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            PessimisticEstimator(alpha=0.0)
        PessimisticEstimator(alpha=1.0)  # 1.0 = never decay, allowed


class TestLastValue:
    def test_predicts_previous_cost(self):
        est = LastValueEstimator()
        r = make_request(tenant="T", api="A")
        est.observe(r, 3.0)
        est.observe(r, 9.0)
        assert est.estimate(r) == 9.0


class TestWindowedMean:
    def test_mean_of_window(self):
        est = WindowedMeanEstimator(window=3)
        r = make_request(tenant="T", api="A")
        for cost in (1.0, 2.0, 3.0):
            est.observe(r, cost)
        assert est.estimate(r) == pytest.approx(2.0)

    def test_window_evicts_oldest(self):
        est = WindowedMeanEstimator(window=2)
        r = make_request(tenant="T", api="A")
        for cost in (100.0, 2.0, 4.0):
            est.observe(r, cost)
        assert est.estimate(r) == pytest.approx(3.0)

    def test_cold_start(self):
        est = WindowedMeanEstimator(window=4, initial_estimate=7.0)
        assert est.estimate(make_request()) == 7.0

    def test_reset(self):
        est = WindowedMeanEstimator(window=2, initial_estimate=1.0)
        r = make_request()
        est.observe(r, 100.0)
        est.reset()
        assert est.estimate(r) == 1.0

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            WindowedMeanEstimator(window=0)


class TestRegistry:
    def test_known_names(self):
        for name in ("oracle", "ema", "pessimistic", "last-value", "windowed-mean"):
            assert make_estimator(name) is not None

    def test_kwargs_forwarded(self):
        est = make_estimator("ema", alpha=0.5)
        assert est.alpha == 0.5

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown estimator"):
            make_estimator("magic")

    def test_negative_cost_rejected(self):
        est = make_estimator("ema")
        with pytest.raises(ConfigurationError):
            est.observe(make_request(), -1.0)
