"""Unit tests for trace generation, persistence, and transformation."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    Backlogged,
    PoissonArrivals,
    TenantSpec,
    FixedCost,
    LogNormalCost,
)
from repro.workloads.trace import (
    TraceRecord,
    generate_trace,
    load_trace,
    merge_traces,
    rescale_trace,
    save_trace,
    scramble_trace,
    thin_trace,
    trace_statistics,
)


def spec(tenant="A", rate=50.0, cost=10.0):
    return TenantSpec(
        tenant_id=tenant,
        api_costs={"x": FixedCost(cost)},
        arrivals=PoissonArrivals(rate=rate),
    )


class TestGeneration:
    def test_sorted_by_time(self):
        trace = generate_trace([spec("A"), spec("B")], duration=5.0, seed=1)
        times = [r.time for r in trace]
        assert times == sorted(times)

    def test_deterministic_per_seed(self):
        a = generate_trace([spec("A")], duration=5.0, seed=3)
        b = generate_trace([spec("A")], duration=5.0, seed=3)
        assert a == b
        c = generate_trace([spec("A")], duration=5.0, seed=4)
        assert a != c

    def test_tenant_isolation_from_population_changes(self):
        """Adding a tenant must not perturb another tenant's stream."""
        alone = [r for r in generate_trace([spec("A")], 5.0, seed=3)]
        together = [
            r for r in generate_trace([spec("A"), spec("B")], 5.0, seed=3)
            if r.tenant == "A"
        ]
        assert alone == together

    def test_backlogged_specs_rejected(self):
        closed = TenantSpec(
            tenant_id="C", api_costs={"x": FixedCost(1.0)}, arrivals=Backlogged()
        )
        with pytest.raises(WorkloadError):
            generate_trace([closed], duration=1.0)


class TestTransforms:
    def _trace(self):
        return generate_trace(
            [spec("A", cost=10.0), spec("B", cost=1000.0)], duration=5.0, seed=2
        )

    def test_merge_sorts(self):
        t1 = self._trace()
        t2 = generate_trace([spec("C")], duration=5.0, seed=5)
        merged = merge_traces(t1, t2)
        assert len(merged) == len(t1) + len(t2)
        times = [r.time for r in merged]
        assert times == sorted(times)

    def test_rescale_speed(self):
        trace = self._trace()
        fast = rescale_trace(trace, speed=2.0)
        assert fast[-1].time == pytest.approx(trace[-1].time / 2.0)
        with pytest.raises(WorkloadError):
            rescale_trace(trace, speed=0.0)

    def test_thin_keeps_fraction(self):
        trace = self._trace()
        thinned = thin_trace(trace, 0.5, seed=0)
        assert len(thinned) == pytest.approx(len(trace) * 0.5, rel=0.2)
        assert set(thinned) <= set(trace)

    def test_thin_full_keep(self):
        trace = self._trace()
        assert thin_trace(trace, 1.0) == list(trace)
        with pytest.raises(WorkloadError):
            thin_trace(trace, 0.0)

    def test_scramble_preserves_arrivals_and_pool(self):
        trace = self._trace()
        scrambled = scramble_trace(trace, ["A"], seed=1)
        assert len(scrambled) == len(trace)
        # Arrival times and tenants unchanged.
        assert [(r.time, r.tenant) for r in scrambled] == [
            (r.time, r.tenant) for r in trace
        ]
        # B's records untouched.
        b_original = [r for r in trace if r.tenant == "B"]
        b_after = [r for r in scrambled if r.tenant == "B"]
        assert b_original == b_after
        # A's costs now sampled from the pooled (10, 1000) mixture.
        a_costs = {r.cost for r in scrambled if r.tenant == "A"}
        assert 1000.0 in a_costs, "scrambled tenant never drew a pooled cost"

    def test_scramble_empty(self):
        assert scramble_trace([], ["A"]) == []

    def test_scramble_makes_tenant_unpredictable(self):
        """§6.2.1: the scrambled tenant loses its cost predictability."""
        stable = TenantSpec(
            tenant_id="S",
            api_costs={"x": FixedCost(10.0)},
            arrivals=PoissonArrivals(rate=200.0),
        )
        wild = TenantSpec(
            tenant_id="W",
            api_costs={"k": LogNormalCost(1e4, 1.0)},
            arrivals=PoissonArrivals(rate=200.0),
        )
        trace = generate_trace([stable, wild], duration=5.0, seed=7)
        scrambled = scramble_trace(trace, ["S"], seed=7)
        s_costs = np.array([r.cost for r in scrambled if r.tenant == "S"])
        assert s_costs.std() / s_costs.mean() > 1.0


class TestPersistence:
    def test_roundtrip_csv(self, tmp_path):
        trace = generate_trace([spec("A"), spec("B", cost=7.5)], 3.0, seed=1)
        path = tmp_path / "trace.csv"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded == trace

    def test_roundtrip_gzip(self, tmp_path):
        trace = generate_trace([spec("A")], 3.0, seed=1)
        path = tmp_path / "trace.csv.gz"
        save_trace(trace, path)
        assert load_trace(path) == trace

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(WorkloadError):
            load_trace(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,tenant,api,cost\n1.0,A,x\n")
        with pytest.raises(WorkloadError):
            load_trace(path)


class TestStatistics:
    def test_empty(self):
        assert trace_statistics([]) == {"requests": 0}

    def test_summary_fields(self):
        trace = [
            TraceRecord(0.0, "A", "x", 10.0),
            TraceRecord(1.0, "B", "y", 1000.0),
        ]
        stats = trace_statistics(trace)
        assert stats["requests"] == 2
        assert stats["tenants"] == 2
        assert stats["apis"] == 2
        assert stats["duration"] == 1.0
        assert stats["total_cost"] == 1010.0
