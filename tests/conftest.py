"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

import pytest

from repro.core.request import Request
from repro.core.scheduler import Scheduler


def make_request(
    tenant: str = "T",
    cost: float = 1.0,
    api: str = "api",
    weight: float = 1.0,
) -> Request:
    """A bare request for direct scheduler tests."""
    return Request(tenant_id=tenant, cost=cost, api=api, weight=weight)


class SchedulerHarness:
    """Deterministic sequencer that drives a scheduler directly.

    Simulates a pool of unit-rate threads with deferred completions, as
    the paper's worked examples do.  Tenants are kept backlogged: each
    dispatch immediately enqueues a replacement request of the same
    (tenant, cost).
    """

    def __init__(self, scheduler: Scheduler, costs: Dict[str, float]) -> None:
        self.scheduler = scheduler
        self.costs = dict(costs)
        self.slots: List[Tuple[float, int, str]] = []  # (start, thread, tenant)

    def run(self, horizon: float) -> List[Tuple[float, int, str]]:
        scheduler = self.scheduler
        # Two initial requests per tenant so queues never drain at
        # dequeue time (a drained DRR flow forfeits its deficit, which
        # would make a window-1 closed loop spuriously unfair).
        for tenant, cost in self.costs.items():
            scheduler.enqueue(make_request(tenant, cost), 0.0)
        for tenant, cost in self.costs.items():
            scheduler.enqueue(make_request(tenant, cost), 0.0)
        free = [(0.0, i) for i in range(scheduler.num_threads)]
        heapq.heapify(free)
        completions: List[Tuple[float, int, Request]] = []
        while free:
            now, thread = heapq.heappop(free)
            if now >= horizon:
                continue
            while completions and completions[0][0] <= now:
                end, _, done = heapq.heappop(completions)
                scheduler.complete(done, done.cost, end)
            request = scheduler.dequeue(thread, now)
            assert request is not None
            end = now + request.cost / scheduler.thread_rate
            self.slots.append((now, thread, request.tenant_id))
            scheduler.enqueue(
                make_request(request.tenant_id, self.costs[request.tenant_id]), now
            )
            heapq.heappush(completions, (end, request.seqno, request))
            heapq.heappush(free, (end, thread))
        self.slots.sort()
        return self.slots

    def service_by_tenant(self, horizon: Optional[float] = None) -> Dict[str, float]:
        """Total cost dispatched per tenant within the horizon."""
        out: Dict[str, float] = {}
        for start, _, tenant in self.slots:
            if horizon is not None and start >= horizon:
                continue
            out[tenant] = out.get(tenant, 0.0) + self.costs[tenant]
        return out


@pytest.fixture
def harness_factory():
    """Factory fixture: ``harness_factory(scheduler, costs)``."""
    return SchedulerHarness
