"""Differential tests: ``dequeue_batch(k)`` == ``k`` sequential dequeues.

``VirtualTimeScheduler.dequeue_batch`` is the pool-drain fast path the
server takes when several workers free at the same instant.  Its
contract is *request-for-request identity* with the sequential loop:
same requests, same order, same thread assignment, same virtual-time
trajectory, and -- when a tracer is attached -- the same decision-event
stream.  These tests run the two paths side by side on every
virtual-time scheduler:

* a hypothesis property over random workloads (weights, costs, APIs,
  pool shapes) driven through interleaved enqueues, completions, and
  refresh charging;
* seeded long traces through the same driver for every scheduler;
* edge cases: backlog drains mid-batch, empty backlog, single worker,
  tracer-attached event-stream identity, and the base-class fallback.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import make_scheduler
from repro.core.request import Request
from repro.core.scheduler import Scheduler
from repro.obs.tracer import Tracer
from repro.simulator.rng import make_rng

#: Every virtual-time scheduler with an indexed path, covering oracle,
#: pessimistic (2dfq-e), and EMA (wf2q-e) estimator families.
ALL_EIGHT = ["wfq", "sfq", "wf2q", "wf2q+", "msf2q", "2dfq", "2dfq-e", "wf2q-e"]


def build_workload(seed: int, num_tenants: int = 5, count: int = 120):
    """Seeded (arrival_step, tenant, cost, api, weight) tuples."""
    rng = make_rng(seed, "batch-dispatch")
    weights = {
        f"T{i}": float(rng.choice([0.5, 1.0, 2.0])) for i in range(num_tenants)
    }
    workload = []
    step = 0
    for _ in range(count):
        step += int(rng.integers(0, 3))
        tenant = f"T{int(rng.integers(num_tenants))}"
        workload.append(
            (
                step,
                tenant,
                float(10.0 ** rng.uniform(-0.5, 1.5)),
                str(rng.choice(["A", "B", "G"])),
                weights[tenant],
            )
        )
    return workload


def drive(scheduler, workload, num_threads, batched, tracer=None, rate=10.0):
    """Run a workload to completion, dispatching to every free thread
    each step -- either via one ``dequeue_batch`` call or a sequential
    ``dequeue`` loop -- and return the full observable trajectory."""
    if tracer is not None:
        scheduler.attach_tracer(tracer)
    arrivals = list(enumerate(workload))
    index_of = {}  # id(request) -> workload index (seqnos are global)
    busy = {}  # thread -> [end, last_report, request]
    trajectory = []
    now, step, steps = 0.0, 0.05, 0
    while arrivals or scheduler.backlog > 0 or busy:
        done = sorted(
            (entry[0], entry[2].seqno, thread)
            for thread, entry in busy.items()
            if entry[0] <= now
        )
        for end, _, thread in done:
            request = busy.pop(thread)[2]
            scheduler.complete(request, (end - now) * rate + 0.0, end)
        while arrivals and arrivals[0][1][0] <= steps:
            index, (_, tenant, cost, api, weight) = arrivals.pop(0)
            request = Request(
                tenant_id=tenant, cost=cost, api=api, weight=weight
            )
            index_of[id(request)] = index
            scheduler.enqueue(request, now)
        if steps % 3 == 0:
            for thread in sorted(busy):
                entry = busy[thread]
                usage = (now - entry[1]) * rate
                if usage > 0.0:
                    scheduler.refresh(entry[2], usage, now)
                    entry[1] = now
        free = [t for t in range(num_threads) if t not in busy]
        if free and scheduler.backlog > 0:
            if batched:
                requests = scheduler.dequeue_batch(free, now)
            else:
                requests = []
                for thread in free:
                    request = scheduler.dequeue(thread, now)
                    if request is None:
                        break
                    requests.append(request)
            for thread, request in zip(free, requests):
                busy[thread] = [now + request.cost / rate, now, request]
                trajectory.append(
                    (
                        request.tenant_id,
                        index_of[id(request)],
                        request.cost,
                        request.thread_id,
                        thread,
                        round(scheduler.virtual_time(now), 9),
                    )
                )
        now += step
        steps += 1
        assert steps < 200_000, "driver failed to converge"
    return trajectory


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(ALL_EIGHT),
    seed=st.integers(min_value=0, max_value=10_000),
    num_threads=st.integers(min_value=1, max_value=6),
)
def test_batch_equals_sequential_property(name, seed, num_threads):
    workload = build_workload(seed, count=60)
    runs = []
    for batched in (False, True):
        scheduler = make_scheduler(
            name, num_threads=num_threads, thread_rate=10.0
        )
        runs.append(drive(scheduler, workload, num_threads, batched))
    assert runs[0] == runs[1]
    assert len(runs[0]) == len(workload)


class TestBatchDifferentialSeeded:
    def run_pair(self, name, num_threads=4, seed=7, tracer_pair=None, **kwargs):
        workload = build_workload(seed)
        out = []
        for i, batched in enumerate((False, True)):
            scheduler = make_scheduler(
                name, num_threads=num_threads, thread_rate=10.0, **kwargs
            )
            tracer = tracer_pair[i] if tracer_pair else None
            out.append(drive(scheduler, workload, num_threads, batched, tracer))
        return out

    def test_all_schedulers_identical(self):
        for name in ALL_EIGHT:
            sequential, batched = self.run_pair(name)
            assert sequential == batched, name
            assert len(sequential) == 120

    def test_identical_in_every_selection_mode(self):
        """The batch path inlines the auto-deactivation check; all three
        selection modes must stay differential-identical."""
        for mode in (False, True, "auto"):
            sequential, batched = self.run_pair("2dfq", indexed=mode)
            assert sequential == batched, mode

    def test_tracer_streams_identical(self):
        """Event-for-event: the batched run emits the same decision
        stream (enqueue/select/dispatch payloads) as the sequential."""
        tracers = (Tracer("seq"), Tracer("batch"))
        sequential, batched = self.run_pair("2dfq", tracer_pair=tracers)
        assert sequential == batched
        def normalized(tracer):
            # Seqnos are allocated from a process-global counter, so the
            # two runs differ by a constant offset; rebase to the run's
            # first seqno before comparing streams.
            events = [e.as_dict() for e in tracer.events]
            base = min(e["seqno"] for e in events if "seqno" in e)
            for event in events:
                if "seqno" in event:
                    event["seqno"] -= base
            return events

        seq_events = normalized(tracers[0])
        batch_events = normalized(tracers[1])
        assert len(seq_events) > 300
        assert seq_events == batch_events


class TestBatchEdgeCases:
    def test_batch_stops_when_backlog_drains(self):
        s = make_scheduler("wf2q", num_threads=4)
        s.enqueue(Request(tenant_id="A", cost=1.0), 0.0)
        s.enqueue(Request(tenant_id="B", cost=2.0), 0.0)
        batch = s.dequeue_batch([0, 1, 2, 3], 0.0)
        assert [r.tenant_id for r in batch] == ["A", "B"]
        assert [r.thread_id for r in batch] == [0, 1]
        assert s.backlog == 0

    def test_empty_backlog_returns_empty_list(self):
        s = make_scheduler("2dfq", num_threads=2)
        assert s.dequeue_batch([0, 1], 0.0) == []

    def test_single_thread_batch(self):
        s = make_scheduler("sfq", num_threads=1)
        s.enqueue(Request(tenant_id="A", cost=1.0), 0.0)
        (request,) = s.dequeue_batch([0], 0.0)
        assert request.tenant_id == "A"
        assert request.thread_id == 0

    def test_base_class_fallback_loops_dequeue(self):
        """Non-virtual-time schedulers inherit the base implementation,
        which loops ``dequeue`` -- same contract, no override needed."""
        s = make_scheduler("fifo", num_threads=2)
        assert type(s).dequeue_batch is Scheduler.dequeue_batch
        s.enqueue(Request(tenant_id="A", cost=1.0), 0.0)
        s.enqueue(Request(tenant_id="B", cost=1.0), 0.0)
        s.enqueue(Request(tenant_id="C", cost=1.0), 0.0)
        batch = s.dequeue_batch([0, 1], 0.0)
        assert [r.tenant_id for r in batch] == ["A", "B"]
        assert s.backlog == 1
