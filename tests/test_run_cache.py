"""Tests for the content-addressed run cache and RunSpec canonicalization."""

import dataclasses

import numpy as np
import pytest

from repro.experiments.expensive_requests import expensive_requests_config
from repro.parallel import RunCache, RunSpec, canonicalize, source_digest
from repro.workloads.synthetic import expensive_requests_population


def small_spec(seed=0, duration=1.0):
    config = expensive_requests_config(
        schedulers=("wfq",), num_threads=2, thread_rate=100.0,
        duration=duration, seed=seed,
    )
    specs = expensive_requests_population(num_small=3, total=4)
    return RunSpec(scheduler="wfq", specs=tuple(specs), config=config)


class TestCanonicalize:
    def test_primitives_pass_through(self):
        assert canonicalize(None) is None
        assert canonicalize(True) is True
        assert canonicalize(3) == 3
        assert canonicalize(2.5) == 2.5
        assert canonicalize("x") == "x"

    def test_numpy_scalars_and_arrays(self):
        assert canonicalize(np.float64(1.5)) == 1.5
        assert canonicalize(np.array([1, 2])) == [1, 2]

    def test_dict_keys_sorted(self):
        assert canonicalize({"b": 1, "a": 2}) == {"a": 2, "b": 1}
        out = list(canonicalize({"b": 1, "a": 2}))
        assert out == ["a", "b"]

    def test_sequences_become_lists(self):
        assert canonicalize((1, 2)) == [1, 2]
        assert canonicalize({3, 1, 2}) == [1, 2, 3]

    def test_dataclasses_tagged_with_kind(self):
        @dataclasses.dataclass
        class Point:
            x: int
            y: int

        out = canonicalize(Point(1, 2))
        assert out["__kind__"] == "Point"
        assert out["x"] == 1 and out["y"] == 2

    def test_private_attributes_excluded(self):
        class Dist:
            def __init__(self):
                self.mean = 5.0
                self._hidden = object()  # not canonicalizable; must be skipped

        out = canonicalize(Dist())
        assert out == {"__kind__": "Dist", "mean": 5.0}

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            canonicalize(object())


class TestCacheKey:
    def test_key_is_stable(self):
        cache = RunCache("unused")
        assert cache.key_for(small_spec()) == cache.key_for(small_spec())

    def test_key_changes_with_spec(self):
        cache = RunCache("unused")
        assert cache.key_for(small_spec(seed=0)) != cache.key_for(
            small_spec(seed=1)
        )
        assert cache.key_for(small_spec(duration=1.0)) != cache.key_for(
            small_spec(duration=2.0)
        )

    def test_source_digest_is_cached_and_hex(self):
        digest = source_digest()
        assert digest == source_digest()
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex


class TestCacheStore:
    def test_roundtrip(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put("k" * 64, {"answer": 42})
        found, value = cache.lookup("k" * 64)
        assert found and value == {"answer": 42}
        assert len(cache) == 1

    def test_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        found, value = cache.lookup("0" * 64)
        assert not found and value is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put("k" * 64, [1, 2, 3])
        entry = next(tmp_path.glob("*.pkl"))
        entry.write_bytes(b"not a pickle")
        found, _ = cache.lookup("k" * 64)
        assert not found

    def test_counters(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.lookup("a" * 64)
        cache.put("a" * 64, 1)
        cache.lookup("a" * 64)
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["stores"] == 1

    def test_directory_created_lazily_on_put(self, tmp_path):
        target = tmp_path / "sub" / "cache"
        cache = RunCache(target)
        cache.put("b" * 64, "value")
        assert (target).is_dir()
        assert cache.lookup("b" * 64) == (True, "value")
