"""Differential tests: indexed selection == linear-scan selection.

The O(log N) selection index (repro.core.selection) must be
*dispatch-for-dispatch identical* to the reference linear scans -- same
tenants, same order, on every scheduler, under both estimator families.
These tests run the two modes side by side:

* on seeded Azure-like workloads through the real simulator (server,
  refresh charging, open-loop arrival traces);
* on seeded random workloads (random weights, arrival times, APIs and
  costs) through a direct scheduler driver with interleaved refreshes --
  a property-style loop over many seeds and all eight schedulers.
"""

from __future__ import annotations

from collections import deque

import pytest

from repro.core import make_scheduler
from repro.core.request import Request
from repro.simulator.clock import Simulation
from repro.simulator.rng import make_rng
from repro.simulator.server import ThreadPoolServer
from repro.workloads.azure import random_tenants
from repro.workloads.build import attach_specs

#: Every virtual-time scheduler with an indexed path, covering all three
#: estimator families: oracle (plain names), pessimistic (2dfq-e), and
#: EMA (wf2q-e / sfq-e).
ALL_EIGHT = ["wfq", "sfq", "wf2q", "wf2q+", "msf2q", "2dfq", "2dfq-e", "wf2q-e"]


# ---------------------------------------------------------------------------
# Direct driver: deterministic quantized event loop with refresh charging
# ---------------------------------------------------------------------------


def drive_trace(scheduler, requests, num_threads, rate=10.0, refresh_every=3):
    """Run a list of timed requests to completion, returning the dispatch
    order as trace indices.  Completions are reported in (end-time,
    seqno) order; every ``refresh_every`` steps the running requests
    report interim usage, exercising refresh charging."""
    arrivals = deque(requests)
    busy = {}  # thread -> [end, last_report, request]
    order = []
    index_of = {id(request): i for i, (_, request) in enumerate(requests)}
    now, step, steps = 0.0, 0.05, 0
    while arrivals or scheduler.backlog > 0 or busy:
        done = sorted(
            (entry[0], entry[2].seqno, thread)
            for thread, entry in busy.items()
            if entry[0] <= now
        )
        for end, _, thread in done:
            request = busy.pop(thread)[2]
            scheduler.complete(request, (end - now) * rate + 0.0, end)
        while arrivals and arrivals[0][0] <= now:
            _, request = arrivals.popleft()
            scheduler.enqueue(request, now)
        if steps % refresh_every == 0:
            for thread in sorted(busy):
                entry = busy[thread]
                usage = (now - entry[1]) * rate
                if usage > 0.0:
                    scheduler.refresh(entry[2], usage, now)
                    entry[1] = now
        for thread in range(num_threads):
            if thread not in busy and scheduler.backlog > 0:
                request = scheduler.dequeue(thread, now)
                busy[thread] = [now + request.cost / rate, now, request]
                order.append(index_of[id(request)])
        now += step
        steps += 1
        assert steps < 500_000, "driver failed to converge"
    return order


def random_timed_requests(seed, num_tenants=6, count=150):
    """Seeded (arrival_time, Request) list with random weights, APIs,
    costs, and bursty arrival times."""
    rng = make_rng(seed, "differential")
    weights = {
        f"T{i}": float(rng.choice([0.5, 1.0, 2.0, 4.0]))
        for i in range(num_tenants)
    }
    requests = []
    now = 0.0
    for _ in range(count):
        now += float(rng.exponential(0.08))
        tenant = f"T{int(rng.integers(num_tenants))}"
        requests.append(
            (
                now,
                Request(
                    tenant_id=tenant,
                    cost=float(10.0 ** rng.uniform(-0.5, 2.0)),
                    api=str(rng.choice(["A", "B", "G"])),
                    weight=weights[tenant],
                ),
            )
        )
    return requests


def rebuild(requests):
    """Fresh Request objects for the second run (requests are mutated
    in place by the scheduler, and seqnos must be re-issued in the same
    relative order)."""
    return [
        (
            t,
            Request(
                tenant_id=r.tenant_id, cost=r.cost, api=r.api, weight=r.weight
            ),
        )
        for t, r in requests
    ]


class TestDifferentialDirect:
    @pytest.mark.parametrize("name", ALL_EIGHT)
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_indexed_matches_linear_scan(self, name, seed):
        trace = random_timed_requests(seed)
        linear = make_scheduler(name, num_threads=3, thread_rate=10.0, indexed=False)
        indexed = make_scheduler(name, num_threads=3, thread_rate=10.0, indexed=True)
        assert not linear.indexed and indexed.indexed
        order_linear = drive_trace(linear, rebuild(trace), num_threads=3)
        order_indexed = drive_trace(indexed, rebuild(trace), num_threads=3)
        assert order_linear == order_indexed
        assert len(order_linear) == len(trace)

    @pytest.mark.parametrize("name", ["2dfq", "wf2q", "sfq-e", "msf2q-e"])
    def test_single_thread_and_many_threads(self, name):
        """Edge pool shapes: one thread (stagger degenerate) and more
        threads than tenants."""
        for num_threads in (1, 8):
            trace = random_timed_requests(11, num_tenants=4, count=80)
            runs = []
            for indexed in (False, True):
                s = make_scheduler(
                    name, num_threads=num_threads, thread_rate=10.0, indexed=indexed
                )
                runs.append(drive_trace(s, rebuild(trace), num_threads=num_threads))
            assert runs[0] == runs[1]


class TestDifferentialAzureSimulator:
    """Side-by-side runs through the real simulator on seeded Azure-like
    open-loop workloads (refresh charging on, trace arrivals)."""

    def _dispatch_sequence(self, scheduler_name, indexed, seed):
        sim = Simulation()
        num_threads, rate = 4, 2.0e5
        scheduler = make_scheduler(
            scheduler_name,
            num_threads=num_threads,
            thread_rate=rate,
            indexed=indexed,
        )
        server = ThreadPoolServer(
            sim, scheduler, num_threads=num_threads, rate=rate, refresh_interval=0.01
        )
        dispatches = []
        server.on_dispatch(
            lambda r: dispatches.append(
                (r.tenant_id, r.api, r.cost, r.arrival_time, r.thread_id)
            )
        )
        specs = random_tenants(6, seed=seed)
        attach_specs(server, specs, seed=seed, duration=4.0)
        sim.run(until=4.0)
        return dispatches

    @pytest.mark.parametrize("name", ["2dfq", "2dfq-e", "wf2q", "wfq", "wf2q-e"])
    def test_identical_dispatch_sequences(self, name):
        linear = self._dispatch_sequence(name, indexed=False, seed=42)
        indexed = self._dispatch_sequence(name, indexed=True, seed=42)
        assert len(linear) > 100, "workload too small to be meaningful"
        assert linear == indexed


class TestIndexMechanics:
    def test_heap_sizes_stay_bounded(self):
        """Lazy invalidation must not leak: after many dispatch cycles
        the heaps stay O(backlogged tenants), not O(total dispatches)."""
        s = make_scheduler("2dfq", num_threads=4, thread_rate=1.0)
        num_tenants = 50
        for i in range(num_tenants):
            for _ in range(2):
                s.enqueue(Request(tenant_id=f"t{i}", cost=1.0), 0.0)
        now = 0.0
        for i in range(5000):
            now += 1e-3
            out = s.dequeue(i % 4, now)
            s.complete(out, out.cost, now)
            s.enqueue(Request(tenant_id=out.tenant_id, cost=1.0), now)
        sizes = s.selection_index.heap_sizes()
        for heap_name, size in sizes.items():
            assert size <= 8 * num_tenants + 256, (heap_name, sizes)

    def test_linear_only_subclass_still_works(self):
        """External subclasses that only override _select get the linear
        path -- no index is built, and behaviour is unchanged."""
        from repro.core import TenantState, VirtualTimeScheduler

        class MySched(VirtualTimeScheduler):
            name = "my-sched"

            def _select(self, thread_id, vnow):
                return self._min_finish(self._backlogged.values())

        s = MySched(num_threads=1)
        assert not s.indexed
        s.enqueue(Request(tenant_id="A", cost=1.0), 0.0)
        s.enqueue(Request(tenant_id="B", cost=2.0), 0.0)
        assert s.dequeue(0, 0.0).tenant_id == "A"
        assert s.dequeue(0, 0.0).tenant_id == "B"

    def test_indexed_flag_default_and_off(self):
        # Default is adaptive: the index only materializes once the
        # backlog crosses AUTO_INDEX_HIGH.
        auto = make_scheduler("wf2q", num_threads=2)
        assert auto.selection_mode == "auto"
        assert not auto.indexed
        forced = make_scheduler("wf2q", num_threads=2, indexed=True)
        assert forced.selection_mode == "indexed"
        assert forced.indexed
        linear = make_scheduler("wf2q", num_threads=2, indexed=False)
        assert linear.selection_mode == "linear"
        assert not linear.indexed


def ramped_trace(seed, num_tenants=40, bursts=2, per_burst=80):
    """Bursty trace engineered to cross both adaptive thresholds: each
    burst backs up every tenant at once (backlog >> AUTO_INDEX_HIGH),
    then a long silence lets the pool drain below AUTO_INDEX_LOW."""
    rng = make_rng(seed, "adaptive-ramp")
    requests = []
    now = 0.0
    for _ in range(bursts):
        for i in range(per_burst):
            requests.append(
                (
                    now,
                    Request(
                        tenant_id=f"T{i % num_tenants}",
                        cost=float(10.0 ** rng.uniform(-0.5, 1.0)),
                        api=str(rng.choice(["A", "B"])),
                    ),
                )
            )
        now += 60.0
    return requests


class TestAdaptiveSelection:
    """The ``indexed="auto"`` default: linear below the crossover, the
    O(log N) index above, with hysteresis between the two thresholds."""

    def test_activation_and_deactivation_edges(self):
        s = make_scheduler("2dfq", num_threads=4, thread_rate=10.0)
        high, low = type(s).AUTO_INDEX_HIGH, type(s).AUTO_INDEX_LOW
        assert high > low > 0
        for i in range(high - 1):
            s.enqueue(Request(tenant_id=f"t{i}", cost=1.0), 0.0)
        assert not s.indexed  # one short of the rising edge
        s.enqueue(Request(tenant_id=f"t{high - 1}", cost=1.0), 0.0)
        assert s.indexed  # exactly HIGH backlogged tenants
        # Deeper enqueues on an existing tenant never re-test anything.
        s.enqueue(Request(tenant_id="t0", cost=1.0), 0.0)
        assert s.indexed
        # Drain: hysteresis keeps the index alive until the backlog
        # falls to LOW *at dequeue entry*.
        now, i = 0.0, 0
        while len(s._backlogged) > low:
            request = s.dequeue(i % 4, now)
            s.complete(request, request.cost, now)
            now += 0.2
            i += 1
        assert s.indexed  # at LOW+0: the falling edge fires on dequeue
        request = s.dequeue(i % 4, now)
        s.complete(request, request.cost, now)
        assert not s.indexed
        assert s.selection_mode == "auto"
        # Re-activation from scratch on the next rising edge.
        for j in range(2 * high):
            s.enqueue(Request(tenant_id=f"r{j}", cost=1.0), now)
        assert s.indexed

    @pytest.mark.parametrize("name", ["2dfq", "wf2q+", "2dfq-e"])
    def test_auto_identical_across_transitions(self, name):
        """A trace that ramps the backlog over HIGH and back under LOW
        (twice) dispatches identically in all three selection modes --
        and the auto run really does transition both ways."""
        trace = ramped_trace(5)
        orders = {}
        transitions = []
        for mode in (False, True, "auto"):
            s = make_scheduler(
                name, num_threads=4, thread_rate=10.0, indexed=mode
            )
            if mode == "auto":
                real_activate = s._activate_index

                def spy():
                    transitions.append("up")
                    real_activate()

                s._activate_index = spy
            orders[mode] = drive_trace(s, rebuild(trace), num_threads=4)
            if mode == "auto":
                assert not s.indexed  # drained => torn back down
        assert orders[False] == orders[True] == orders["auto"]
        assert len(orders[False]) == len(trace)
        assert len(transitions) >= 2, "auto mode never activated"
