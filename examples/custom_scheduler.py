#!/usr/bin/env python3
"""Extending the framework: write and evaluate your own scheduler.

The virtual-time machinery (tags, retroactive charging, refresh
charging, estimators) lives in :class:`VirtualTimeScheduler`; a new
policy only chooses *which backlogged tenant runs next on a given
thread*.  This example implements "2DFQ-quadratic", a variant whose
eligibility stagger grows quadratically with the thread index instead of
linearly -- concentrating small requests on fewer, higher threads -- and
races it against standard 2DFQ on the Figure 8 synthetic workload.

Run:  python examples/custom_scheduler.py
"""

from typing import Optional

from repro.core import TenantState, VirtualTimeScheduler
from repro.experiments import ExperimentConfig, run_comparison
from repro.experiments.expensive_requests import SMALL_PROBE
from repro.workloads import expensive_requests_population

# Registering by subclassing: any VirtualTimeScheduler works with the
# simulator, the metrics collector, and the experiment runner.


class QuadraticStagger2DFQ(VirtualTimeScheduler):
    """2DFQ with eligibility offset ``(i/n)^2 * l`` instead of ``(i/n) * l``."""

    name = "2dfq-quadratic"

    def _select(self, thread_id: int, vnow: float) -> Optional[TenantState]:
        stagger = (thread_id / self._num_threads) ** 2
        eligible = []
        for state in self._backlogged.values():
            offset = stagger * self._head_estimate(state)
            if self._eligible(state.start_tag - offset, vnow):
                eligible.append(state)
        return self._min_finish(eligible)


def main() -> None:
    # Plug the custom class into the registry for this process, then use
    # the standard experiment harness.
    from repro.core import registry

    registry._FACTORIES["2dfq-quadratic"] = QuadraticStagger2DFQ

    config = ExperimentConfig(
        name="custom-scheduler-demo",
        schedulers=("wf2q", "2dfq", "2dfq-quadratic"),
        num_threads=16,
        thread_rate=1000.0,
        duration=8.0,
        refresh_interval=None,
        seed=0,
    )
    specs = expensive_requests_population(num_small=50, total=100)
    result = run_comparison(specs, config)
    fair_rate = result.fair_rate()

    print("sigma(service lag) of a small tenant, Figure 8 workload:\n")
    for name, run in result.runs.items():
        sigma = run.lag_sigma(SMALL_PROBE, reference_rate=fair_rate)
        print(f"  {name:>15}: {sigma:8.4f} s")
    print(
        "\nBoth stagger shapes beat WF2Q; the linear stagger of the paper"
        "\nspreads eligibility evenly and is typically the smoothest."
    )


if __name__ == "__main__":
    main()
