#!/usr/bin/env python3
"""Generate, persist, and replay an Azure-Storage-like workload trace.

Demonstrates the full workload pipeline of the reproduction:

1. build the named reference tenants T1..T12 and a random population;
2. materialize an offline trace and save it to CSV;
3. reload the trace and replay the byte-identical arrivals against
   WFQ, WF2Q, and 2DFQ;
4. report per-tenant service smoothness and the Gini fairness index.

Run:  python examples/azure_replay.py
"""

import tempfile
from pathlib import Path

from repro.experiments import ExperimentConfig, run_comparison
from repro.experiments.report import format_table
from repro.workloads import (
    load_trace,
    named_tenants,
    random_tenants,
    save_trace,
    trace_statistics,
)
from repro.workloads.trace import generate_trace

DURATION = 8.0
NUM_THREADS = 16
THREAD_RATE = 1.0e6


def main() -> None:
    specs = named_tenants() + random_tenants(40, seed=1)

    # 1-2: materialize and persist the trace.
    trace = generate_trace(specs, duration=DURATION, seed=1)
    stats = trace_statistics(trace)
    print("Generated trace:")
    for key in ("requests", "tenants", "apis", "cost_p50", "cost_p99", "cost_max"):
        print(f"  {key:>10}: {stats[key]:,.6g}")

    path = Path(tempfile.gettempdir()) / "azure_like_trace.csv.gz"
    save_trace(trace, path)
    print(f"\nSaved to {path} ({path.stat().st_size:,} bytes); reloading...")
    trace = load_trace(path)

    # 3: replay against each scheduler.
    config = ExperimentConfig(
        name="azure-replay",
        schedulers=("wfq", "wf2q", "2dfq"),
        num_threads=NUM_THREADS,
        thread_rate=THREAD_RATE,
        duration=DURATION,
        refresh_interval=None,  # known costs
        seed=1,
    )
    result = run_comparison(specs, config, trace=trace)

    # 4: report.
    fair_rate = result.fair_rate()
    rows = []
    for name, run in result.runs.items():
        t1 = run.service_series("T1")
        t11 = run.service_series("T11")
        rows.append(
            (
                name,
                t1.lag_sigma(fair_rate),
                t11.lag_sigma(fair_rate),
                float(run.gini_values.mean()),
            )
        )
    print()
    print(
        format_table(
            ["scheduler", "sigma(lag) T1 (s)", "sigma(lag) T11 (s)", "mean Gini"],
            rows,
        )
    )
    print(
        "\nT1 (small, predictable) is served far more smoothly under 2DFQ;"
        "\nT11 (large requests) necessarily receives chunky service under"
        "\nevery non-preemptive scheduler."
    )


if __name__ == "__main__":
    main()
