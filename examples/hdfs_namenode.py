#!/usr/bin/env python3
"""An HDFS-NameNode-like scenario (paper §1 and §2).

The NameNode serves metadata RPCs from many tenants inside one process:
cheap lookups (getBlockLocations), medium creates, and very expensive
directory listings ("any poorly written MapReduce job is a potential
distributed denial-of-service attack").  This example reproduces the
motivating incident: a batch job starts hammering the shared process
with expensive listings and, under the stock FIFO admission queue,
interactive tenants starve.  A fair scheduler fixes long-run shares;
2DFQ additionally keeps the interactive latencies smooth.

Run:  python examples/hdfs_namenode.py
"""

from repro import Simulation, ThreadPoolServer, make_scheduler
from repro.metrics import MetricsCollector
from repro.simulator import BackloggedSource, make_rng

NUM_THREADS = 8
THREAD_RATE = 1000.0  # cost units / second
DURATION = 30.0

# RPC cost model (cost units; 1 unit = 1 ms of a worker thread).
GET_BLOCK_LOCATIONS = 1.0
CREATE_FILE = 10.0
LIST_HUGE_DIRECTORY = 2000.0  # a 2-second scan of a giant directory


def run(scheduler_name: str) -> dict:
    sim = Simulation()
    scheduler = make_scheduler(
        scheduler_name, num_threads=NUM_THREADS, thread_rate=THREAD_RATE
    )
    server = ThreadPoolServer(
        sim, scheduler, num_threads=NUM_THREADS, rate=THREAD_RATE,
        refresh_interval=0.01,
    )
    # Metrics start at t=10s, when the batch jobs arrive.
    collector = MetricsCollector(server, sample_interval=0.1, warmup=10.0)

    # Four interactive tenants, each a client library with a bounded
    # number of metadata RPCs in flight (closed loop, like real HDFS
    # clients), mixing cheap lookups with occasional creates.
    for index in range(4):
        tenant = f"interactive-{index}"
        rng = make_rng(7, "hdfs", tenant)

        def sampler(rng=rng):
            if rng.random() < 0.9:
                return ("getBlockLocations", GET_BLOCK_LOCATIONS)
            return ("create", CREATE_FILE)

        BackloggedSource(server, tenant, sampler, window=8).start()

    # The misbehaving batch jobs: continuously backlogged expensive
    # directory listings, starting at t=10s.
    for index in range(4):
        BackloggedSource(
            server,
            f"batch-{index}",
            lambda: ("listStatus", LIST_HUGE_DIRECTORY),
            window=8,
            start_time=10.0,
        ).start()

    sim.run(until=DURATION)
    return collector.result()


def main() -> None:
    print("HDFS NameNode scenario: 4 interactive tenants; at t=10s four")
    print("batch jobs flood the shared process with 2-second listings.")
    print("(Interactive clients are closed-loop, so their *count* of slow")
    print("requests is small -- stall windows show the damage.)\n")
    header = (
        f"{'scheduler':>12} | {'inter. p50':>10} {'max':>8}"
        f" | {'stalled 100ms windows':>21} | {'batch units':>11}"
    )
    print(header)
    print("-" * len(header))
    for name in ("fifo", "round-robin", "wfq", "2dfq"):
        result = run(name)
        stats = result.latency_stats("interactive-0")
        series = result.service_series("interactive-0")
        rate = series.service_rate()
        stalled = float((rate[1:] <= 0.0).mean())
        batch = result.service_series("batch-0").actual[-1]
        print(
            f"{name:>12} | {stats.p50 * 1000:7.1f} ms"
            f" {stats.maximum * 1000:5.0f} ms"
            f" | {stalled:21.1%} | {batch:11.0f}"
        )
    print(
        "\nUnder FIFO the listings periodically occupy every worker thread:"
        "\nthe interactive tenant sees multi-second stalls (max latency) and"
        "\nreceives no service at all in a large share of 100ms windows."
        "\nFair queuing restores shares; 2DFQ also removes the stall windows"
        "\nby confining listings to the low-index threads."
    )


if __name__ == "__main__":
    main()
