#!/usr/bin/env python3
"""Scheduling with unknown costs: pessimistic vs moving-average estimation.

Reproduces the core §5 scenario in miniature: a predictable tenant with
small requests shares the server with unpredictable tenants whose costs
swing across three orders of magnitude.  No scheduler knows costs ahead
of time; WFQ^E / WF2Q^E estimate with per-tenant-per-API EMAs, 2DFQ^E
with the pessimistic decayed maximum.  The pessimistic estimator treats
the unpredictable tenants as expensive, biasing them to low-index
threads and away from the predictable tenant's requests.

Run:  python examples/unpredictable_tenants.py
"""

from repro import Simulation, ThreadPoolServer, make_scheduler
from repro.metrics import MetricsCollector
from repro.simulator import BackloggedSource, make_rng

NUM_THREADS = 8
THREAD_RATE = 1000.0
DURATION = 40.0
NUM_UNPREDICTABLE = 6


def unpredictable_sampler(tenant: str):
    """Mostly cheap requests, occasionally a 1000x monster -- *on the
    same API*, so per-tenant-per-API estimators cannot separate them
    (the high-CoV tenants of the paper's Figure 3).  A moving average
    settles near the mean and underestimates every monster ~12x; the
    pessimistic estimator stays near the maximum."""
    rng = make_rng(3, "unpredictable", tenant)

    def sample():
        if rng.random() < 0.08:
            return ("call", float(rng.normal(2000.0, 200.0)))
        return ("call", float(max(0.1, rng.normal(2.0, 0.4))))

    return sample


def run(scheduler_name: str) -> tuple:
    sim = Simulation()
    scheduler = make_scheduler(
        scheduler_name,
        num_threads=NUM_THREADS,
        thread_rate=THREAD_RATE,
        initial_estimate=2.0,
    )
    server = ThreadPoolServer(
        sim, scheduler, num_threads=NUM_THREADS, rate=THREAD_RATE,
        refresh_interval=0.01,
    )
    collector = MetricsCollector(server, sample_interval=0.1, warmup=5.0)

    BackloggedSource(
        server, "steady", lambda: ("get", 1.0), window=4
    ).start()
    for index in range(NUM_UNPREDICTABLE):
        tenant = f"wild-{index}"
        BackloggedSource(
            server, tenant, unpredictable_sampler(tenant), window=4
        ).start()

    sim.run(until=DURATION)
    result = collector.result()
    fair_rate = NUM_THREADS * THREAD_RATE / (1 + NUM_UNPREDICTABLE)
    series = result.service_series("steady")
    stats = result.latency_stats("steady")
    return series.lag_sigma(fair_rate), stats.p99


def main() -> None:
    print(
        f"1 predictable tenant vs {NUM_UNPREDICTABLE} unpredictable tenants "
        f"on {NUM_THREADS} threads; costs are NOT known to the scheduler.\n"
    )
    print(f"{'scheduler':>8} | {'sigma(lag)':>10} | {'steady p99':>10}")
    print("-" * 36)
    for name in ("wfq-e", "wf2q-e", "2dfq-e"):
        sigma, p99 = run(name)
        print(f"{name:>8} | {sigma:9.4f} s | {p99 * 1000:7.1f} ms")
    print(
        "\n2DFQ^E's pessimistic estimation keeps the unpredictable tenants'"
        "\nmasquerading monsters off the threads serving the steady tenant."
    )


if __name__ == "__main__":
    main()
