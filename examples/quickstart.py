#!/usr/bin/env python3
"""Quickstart: schedule tenants with very different request costs.

Builds a 4-thread simulated server shared by four tenants with small
requests and four with 100x larger requests (all continuously busy),
runs it under WFQ, WF2Q and 2DFQ, and prints how smoothly each class
was served.  This is the paper's Figure 1 situation at example scale.

Run:  python examples/quickstart.py
"""

from repro import Simulation, ThreadPoolServer, make_scheduler
from repro.metrics import MetricsCollector
from repro.simulator import BackloggedSource

NUM_THREADS = 4
THREAD_RATE = 100.0
NUM_SMALL = 4
NUM_LARGE = 4
DURATION = 60.0


def run(scheduler_name: str) -> None:
    sim = Simulation()
    scheduler = make_scheduler(
        scheduler_name, num_threads=NUM_THREADS, thread_rate=THREAD_RATE
    )
    server = ThreadPoolServer(
        sim, scheduler, num_threads=NUM_THREADS, rate=THREAD_RATE,
        refresh_interval=0.01,
    )
    collector = MetricsCollector(server, sample_interval=0.1)

    # Four "web" tenants send 1-unit requests; four "analytics" tenants
    # send 100-unit scans.  All stay continuously busy.
    for index in range(NUM_SMALL):
        BackloggedSource(
            server, f"web-{index}", lambda: ("get", 1.0), window=4
        ).start()
    for index in range(NUM_LARGE):
        BackloggedSource(
            server, f"analytics-{index}", lambda: ("scan", 100.0), window=4
        ).start()

    sim.run(until=DURATION)
    result = collector.result()

    fair_rate = NUM_THREADS * THREAD_RATE / (NUM_SMALL + NUM_LARGE)
    web = result.service_series("web-0")
    web_stats = result.latency_stats("web-0")
    scan = result.service_series("analytics-0")
    print(
        f"{scheduler_name:>5}:  web-0 sigma(lag) = {web.lag_sigma(fair_rate):7.4f} s,"
        f"  p99 latency = {web_stats.p99 * 1000:8.1f} ms,"
        f"  analytics-0 served {scan.actual[-1]:7.0f} units"
    )


def main() -> None:
    print(
        f"{NUM_SMALL} small-request tenants vs {NUM_LARGE} 100x-scan tenants "
        f"on {NUM_THREADS} threads.\n"
        "All three schedulers give every tenant the same long-run share;\n"
        "2DFQ also serves the small tenants *smoothly* by confining scans\n"
        "to the low-index threads.\n"
    )
    for name in ("wfq", "wf2q", "2dfq"):
        run(name)


if __name__ == "__main__":
    main()
